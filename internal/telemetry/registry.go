// Package telemetry is the observability layer of the reproduction: a
// lightweight metrics registry (counters, gauges, windowed histograms with
// quantile extraction) with a Prometheus-text snapshot, a time-series
// sampler that folds the simulator's trace-event stream into per-interval
// series, a packet-lifecycle span builder with a queue-wait vs.
// service-time breakdown, and JSONL sinks for all of it.
//
// Every consumer here is a pure core.Config.Trace subscriber — the
// simulator hot loop gains no new hooks, and a nil *Registry (telemetry
// disabled) makes every metric operation a nil-receiver no-op with zero
// allocation.
package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"mp5/internal/stats"
)

// desc is the shared metric metadata.
type desc struct {
	name string
	help string
}

// metric is anything the registry can snapshot.
type metric interface {
	describe() desc
	typ() string
	// write renders the metric's sample lines (no HELP/TYPE headers).
	write(w io.Writer)
}

// Registry holds an ordered set of named metrics. A nil *Registry is the
// disabled state: every New* constructor returns nil and every metric
// method on a nil receiver is a no-op.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	byName  map[string]bool
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]bool)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := m.describe()
	if r.byName[d.name] {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", d.name))
	}
	r.byName[d.name] = true
	r.metrics = append(r.metrics, m)
}

// WriteProm renders every registered metric in Prometheus text exposition
// format, in registration order.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	var b strings.Builder
	for _, m := range ms {
		d := m.describe()
		fmt.Fprintf(&b, "# HELP %s %s\n", d.name, d.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", d.name, m.typ())
		m.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// PromString renders the snapshot as a string (convenience for tests and
// CLI output).
func (r *Registry) PromString() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	r.WriteProm(&b)
	return b.String()
}

// ---- Counter ----

// Counter is a monotonically increasing int64 metric. All methods are safe
// on a nil receiver (telemetry disabled) and safe for concurrent use.
type Counter struct {
	v atomic.Int64
	d desc
}

// NewCounter registers a counter. Returns nil when r is nil.
func (r *Registry) NewCounter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{d: desc{name, help}}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n must be non-negative; this is not checked on the hot path).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) describe() desc { return c.d }
func (c *Counter) typ() string    { return "counter" }
func (c *Counter) write(w io.Writer) {
	fmt.Fprintf(w, "%s %d\n", c.d.name, c.v.Load())
}

// ---- CounterVec ----

// CounterVec is a counter partitioned by one label.
type CounterVec struct {
	mu       sync.Mutex
	d        desc
	label    string
	children map[string]*atomic.Int64
}

// NewCounterVec registers a labelled counter family. Returns nil when r is
// nil.
func (r *Registry) NewCounterVec(name, help, label string) *CounterVec {
	if r == nil {
		return nil
	}
	v := &CounterVec{d: desc{name, help}, label: label, children: make(map[string]*atomic.Int64)}
	r.register(v)
	return v
}

// Add adds n to the child with the given label value.
func (v *CounterVec) Add(labelValue string, n int64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	c, ok := v.children[labelValue]
	if !ok {
		c = &atomic.Int64{}
		v.children[labelValue] = c
	}
	v.mu.Unlock()
	c.Add(n)
}

// Inc adds one to the child with the given label value.
func (v *CounterVec) Inc(labelValue string) { v.Add(labelValue, 1) }

// Value returns the child's count (0 when absent or nil).
func (v *CounterVec) Value(labelValue string) int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[labelValue]; ok {
		return c.Load()
	}
	return 0
}

// Total sums every child.
func (v *CounterVec) Total() int64 {
	if v == nil {
		return 0
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	var n int64
	for _, c := range v.children {
		n += c.Load()
	}
	return n
}

func (v *CounterVec) describe() desc { return v.d }
func (v *CounterVec) typ() string    { return "counter" }
func (v *CounterVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=%q} %d\n", v.d.name, v.label, k, v.children[k].Load())
	}
	v.mu.Unlock()
}

// ---- Gauge ----

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
	d    desc
}

// NewGauge registers a gauge. Returns nil when r is nil.
func (r *Registry) NewGauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{d: desc{name, help}}
	r.register(g)
	return g
}

// Set stores x.
func (g *Gauge) Set(x float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(x))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return bitsFloat(g.bits.Load())
}

func (g *Gauge) describe() desc { return g.d }
func (g *Gauge) typ() string    { return "gauge" }
func (g *Gauge) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.d.name, formatFloat(g.Value()))
}

// ---- GaugeFunc ----

// GaugeFunc is a gauge whose value is computed at scrape time by a
// callback — the right shape for values the runtime already maintains
// (uptime, channel depths): the hot path pays nothing and /metrics is
// always current, even on an idle daemon.
type GaugeFunc struct {
	d  desc
	fn func() float64
}

// NewGaugeFunc registers a callback gauge. fn must be safe to call from
// any goroutine at any time after registration. Returns nil when r is nil.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	if r == nil {
		return nil
	}
	g := &GaugeFunc{d: desc{name, help}, fn: fn}
	r.register(g)
	return g
}

// Value evaluates the callback (0 on nil).
func (g *GaugeFunc) Value() float64 {
	if g == nil {
		return 0
	}
	return g.fn()
}

func (g *GaugeFunc) describe() desc { return g.d }
func (g *GaugeFunc) typ() string    { return "gauge" }
func (g *GaugeFunc) write(w io.Writer) {
	fmt.Fprintf(w, "%s %s\n", g.d.name, formatFloat(g.fn()))
}

// ---- GaugeVec ----

// GaugeVec is a gauge partitioned by an ordered list of labels (rendered in
// insertion order of children, sorted by label values for determinism).
type GaugeVec struct {
	mu       sync.Mutex
	d        desc
	labels   []string
	children map[string]float64
}

// NewGaugeVec registers a labelled gauge family. Returns nil when r is nil.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	v := &GaugeVec{d: desc{name, help}, labels: labels, children: make(map[string]float64)}
	r.register(v)
	return v
}

// Set stores x for the child with the given label values (must match the
// label count).
func (v *GaugeVec) Set(x float64, labelValues ...string) {
	if v == nil {
		return
	}
	if len(labelValues) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d labels, got %d", v.d.name, len(v.labels), len(labelValues)))
	}
	v.mu.Lock()
	v.children[strings.Join(labelValues, "\x00")] = x
	v.mu.Unlock()
}

func (v *GaugeVec) describe() desc { return v.d }
func (v *GaugeVec) typ() string    { return "gauge" }
func (v *GaugeVec) write(w io.Writer) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.children))
	for k := range v.children {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		vals := strings.Split(k, "\x00")
		pairs := make([]string, len(vals))
		for i, lv := range vals {
			pairs[i] = fmt.Sprintf("%s=%q", v.labels[i], lv)
		}
		fmt.Fprintf(w, "%s{%s} %s\n", v.d.name, strings.Join(pairs, ","), formatFloat(v.children[k]))
	}
	v.mu.Unlock()
}

// ---- Windowed histogram ----

// Histogram is a windowed distribution metric: observations land in the
// current window, Rotate moves it to the previous one, and quantile
// extraction merges the two — so quantiles reflect roughly the last one to
// two windows while sum/count/max stay cumulative. Rendered as a
// Prometheus summary (quantile samples plus _sum/_count/_max).
type Histogram struct {
	mu        sync.Mutex
	d         desc
	quantiles []float64
	cur, prev *stats.Histogram
	count     int64
	sum       float64
	max       float64
}

// NewHistogram registers a windowed histogram over [lo, hi) with n buckets,
// exposing the given quantiles. Returns nil when r is nil.
func (r *Registry) NewHistogram(name, help string, lo, hi float64, n int, quantiles ...float64) *Histogram {
	if r == nil {
		return nil
	}
	if len(quantiles) == 0 {
		quantiles = []float64{0.5, 0.9, 0.99}
	}
	h := &Histogram{
		d:         desc{name, help},
		quantiles: quantiles,
		cur:       stats.NewHistogram(lo, hi, n),
		prev:      stats.NewHistogram(lo, hi, n),
	}
	r.register(h)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(x float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.cur.Add(x)
	h.count++
	h.sum += x
	if x > h.max {
		h.max = x
	}
	h.mu.Unlock()
}

// Rotate starts a new window: the current window becomes the previous one
// and the old previous window is discarded.
func (h *Histogram) Rotate() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.prev, h.cur = h.cur, h.prev
	for i := range h.cur.Buckets {
		h.cur.Buckets[i] = 0
	}
	h.cur.Under, h.cur.Over = 0, 0
	h.mu.Unlock()
}

// Quantile extracts the q-th quantile over the merged current + previous
// windows (NaN when empty, 0 on nil).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	merged := stats.NewHistogram(h.cur.Lo, h.cur.Hi, len(h.cur.Buckets))
	merged.Merge(h.cur)
	merged.Merge(h.prev)
	return merged.Quantile(q)
}

// Count returns the cumulative observation count.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the cumulative sum of observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Max returns the cumulative maximum observation (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

func (h *Histogram) describe() desc { return h.d }
func (h *Histogram) typ() string    { return "summary" }
func (h *Histogram) write(w io.Writer) {
	for _, q := range h.quantiles {
		fmt.Fprintf(w, "%s{quantile=%q} %s\n", h.d.name, formatFloat(q), formatFloat(h.Quantile(q)))
	}
	h.mu.Lock()
	fmt.Fprintf(w, "%s_sum %s\n", h.d.name, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count %d\n", h.d.name, h.count)
	fmt.Fprintf(w, "%s_max %s\n", h.d.name, formatFloat(h.max))
	h.mu.Unlock()
}

// ---- small helpers ----

func floatBits(x float64) uint64 { return math.Float64bits(x) }
func bitsFloat(b uint64) float64 { return math.Float64frombits(b) }

func formatFloat(x float64) string { return fmt.Sprintf("%g", x) }
