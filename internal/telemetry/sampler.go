package telemetry

import (
	"sync"

	"mp5/internal/core"
)

// StageDepth is one (stage, pipe) occupancy reading in a Sample.
type StageDepth struct {
	Stage int `json:"stage"`
	Pipe  int `json:"pipe"`
	Depth int `json:"depth"`
}

// Sample is one per-interval time-series point, reconstructed purely from
// the trace-event stream. Counts are per interval; depths are gauges read
// at the interval boundary.
type Sample struct {
	Type     string `json:"type"`     // always "sample"
	Cycle    int64  `json:"cycle"`    // first cycle of the interval
	Interval int64  `json:"interval"` // interval length in cycles

	Admitted int64   `json:"admitted"`           // EvAdmit count (recirc re-admissions included)
	Egressed int64   `json:"egressed"`           // EvEgress count
	Tput     float64 `json:"throughput"`         // Egressed / Interval (packets per cycle)
	Resolves int64   `json:"resolves,omitempty"` // EvResolve count
	Enqueues int64   `json:"enqueues,omitempty"` // EvEnqueue count
	Execs    int64   `json:"execs,omitempty"`    // EvExec count

	// Drops maps cause → count for EvDrop in the interval; PhantomDrops
	// counts EvPhantomDrop.
	Drops        map[string]int64 `json:"drops,omitempty"`
	PhantomDrops int64            `json:"phantom_drops,omitempty"`

	// Steers counts inter-pipeline crossings; CrossbarUtil normalizes
	// them to the crossbar's capacity of one crossing per pipeline per
	// cycle.
	Steers       int64   `json:"steers"`
	CrossbarUtil float64 `json:"crossbar_util"`

	// ShardMoves counts EvShardMove (dynamic-sharding churn).
	ShardMoves int64 `json:"shard_moves"`

	// FIFODepth is the per-(stage, pipe) count of queued data packets at
	// the interval boundary; PhantomDepth the phantom placeholders still
	// awaiting their data packet. Zero-depth slots are omitted.
	FIFODepth    []StageDepth `json:"fifo_depth,omitempty"`
	PhantomDepth []StageDepth `json:"phantom_occupancy,omitempty"`
}

type stagePipe struct {
	stage, pipe int
}

// Sampler folds the event stream into per-interval Samples delivered to a
// sink callback. It is a pure trace consumer: attach its Hook via
// core.Config.Trace (combine with other consumers through viz.Tee or
// telemetry.Tee) and call Close after the run to flush the final partial
// interval. Events from concurrent emitters serialize on an internal mutex
// (the interval folding itself still assumes nondecreasing cycle order, so
// concurrent emitters should share a clock or use cycle 0 throughout).
type Sampler struct {
	mu       sync.Mutex
	interval int64
	pipes    int
	sink     func(Sample)

	started bool
	start   int64 // first cycle of the current interval
	cur     Sample

	// Occupancy reconstruction: a data enqueue occupies its (stage,
	// pipe) until the packet executes that stage; a phantom occupies its
	// slot until the data packet lands in it (enqueue) or the packet
	// dies (drop).
	dataOcc    map[stagePipe]int
	phantomOcc map[stagePipe]int
	enqLoc     map[int64]stagePipe
	phantomAt  map[int64][]stagePipe
}

// NewSampler builds a sampler emitting one Sample per interval cycles to
// sink. pipes sizes the crossbar-utilization normalization.
func NewSampler(interval int64, pipes int, sink func(Sample)) *Sampler {
	if interval <= 0 {
		panic("telemetry: sampler interval must be positive")
	}
	if pipes <= 0 {
		pipes = 1
	}
	return &Sampler{
		interval:   interval,
		pipes:      pipes,
		sink:       sink,
		dataOcc:    make(map[stagePipe]int),
		phantomOcc: make(map[stagePipe]int),
		enqLoc:     make(map[int64]stagePipe),
		phantomAt:  make(map[int64][]stagePipe),
	}
}

// Hook returns the trace function to pass as core.Config.Trace.
func (s *Sampler) Hook() func(core.Event) {
	return func(e core.Event) { s.observe(e) }
}

func (s *Sampler) observe(e core.Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.started {
		s.started = true
		s.start = e.Cycle - e.Cycle%s.interval
		s.resetCur()
	}
	// Events arrive in nondecreasing cycle order; emit every interval
	// the stream has moved past (including empty ones, so the series
	// has no gaps).
	for e.Cycle >= s.start+s.interval {
		s.flush()
		s.start += s.interval
		s.resetCur()
	}
	switch e.Kind {
	case core.EvAdmit:
		s.cur.Admitted++
	case core.EvResolve:
		s.cur.Resolves++
	case core.EvExec:
		s.cur.Execs++
		if loc, ok := s.enqLoc[e.PktID]; ok && loc.stage == e.Stage {
			s.dataOcc[loc]--
			if s.dataOcc[loc] == 0 {
				delete(s.dataOcc, loc)
			}
			delete(s.enqLoc, e.PktID)
		}
	case core.EvEnqueue:
		s.cur.Enqueues++
		loc := stagePipe{e.Stage, e.Pipe}
		s.dataOcc[loc]++
		s.enqLoc[e.PktID] = loc
		s.releasePhantom(e.PktID, e.Stage)
	case core.EvPhantom:
		loc := stagePipe{e.Stage, e.Pipe}
		s.phantomOcc[loc]++
		s.phantomAt[e.PktID] = append(s.phantomAt[e.PktID], loc)
	case core.EvSteer:
		s.cur.Steers++
	case core.EvEgress:
		s.cur.Egressed++
	case core.EvDrop:
		if s.cur.Drops == nil {
			s.cur.Drops = make(map[string]int64)
		}
		s.cur.Drops[e.Cause.String()]++
		if loc, ok := s.enqLoc[e.PktID]; ok {
			s.dataOcc[loc]--
			if s.dataOcc[loc] == 0 {
				delete(s.dataOcc, loc)
			}
			delete(s.enqLoc, e.PktID)
		}
		// Any placeholders still waiting for this packet will be
		// cleared as dead phantoms by the simulator.
		for _, loc := range s.phantomAt[e.PktID] {
			s.phantomOcc[loc]--
			if s.phantomOcc[loc] == 0 {
				delete(s.phantomOcc, loc)
			}
		}
		delete(s.phantomAt, e.PktID)
	case core.EvPhantomDrop:
		s.cur.PhantomDrops++
	case core.EvShardMove:
		s.cur.ShardMoves++
	}
}

// releasePhantom retires the placeholder the data packet just filled.
func (s *Sampler) releasePhantom(pktID int64, stage int) {
	locs := s.phantomAt[pktID]
	for i, loc := range locs {
		if loc.stage != stage {
			continue
		}
		s.phantomOcc[loc]--
		if s.phantomOcc[loc] == 0 {
			delete(s.phantomOcc, loc)
		}
		locs[i] = locs[len(locs)-1]
		locs = locs[:len(locs)-1]
		if len(locs) == 0 {
			delete(s.phantomAt, pktID)
		} else {
			s.phantomAt[pktID] = locs
		}
		return
	}
}

func (s *Sampler) resetCur() {
	s.cur = Sample{Type: "sample", Cycle: s.start, Interval: s.interval}
}

func (s *Sampler) flush() {
	if s.sink == nil {
		return
	}
	s.cur.Tput = float64(s.cur.Egressed) / float64(s.interval)
	s.cur.CrossbarUtil = float64(s.cur.Steers) / float64(s.interval*int64(s.pipes))
	s.cur.FIFODepth = depthSlice(s.dataOcc)
	s.cur.PhantomDepth = depthSlice(s.phantomOcc)
	s.sink(s.cur)
}

// depthSlice renders an occupancy map as a deterministic slice.
func depthSlice(m map[stagePipe]int) []StageDepth {
	if len(m) == 0 {
		return nil
	}
	out := make([]StageDepth, 0, len(m))
	for loc, d := range m {
		out = append(out, StageDepth{Stage: loc.stage, Pipe: loc.pipe, Depth: d})
	}
	sortDepths(out)
	return out
}

func sortDepths(ds []StageDepth) {
	// insertion sort: the slices are tiny (stages × pipes at most).
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && less(ds[j], ds[j-1]); j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

func less(a, b StageDepth) bool {
	if a.Stage != b.Stage {
		return a.Stage < b.Stage
	}
	return a.Pipe < b.Pipe
}

// Close flushes the final (possibly partial) interval.
func (s *Sampler) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		s.flush()
		s.started = false
	}
}

// Tee fans one trace hook out to several consumers (mirror of viz.Tee, so
// telemetry users need not import the rendering package).
func Tee(hooks ...func(core.Event)) func(core.Event) {
	return func(e core.Event) {
		for _, h := range hooks {
			if h != nil {
				h(e)
			}
		}
	}
}
