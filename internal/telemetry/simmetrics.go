package telemetry

import (
	"fmt"

	"mp5/internal/core"
)

// SimMetrics is the standard per-run metric set, filled purely from the
// trace-event stream. After a drained run the counters reconcile exactly
// with the simulator's Result: Injected, Completed, the per-cause drop
// counters, phantom drops, and shard moves all match.
type SimMetrics struct {
	Injected     *Counter
	Completed    *Counter
	Drops        *CounterVec // by cause: data, insert, ingress, starved
	PhantomDrops *Counter
	ShardMoves   *Counter
	Steers       *Counter
	Events       *CounterVec // by kind
	Latency      *Histogram  // fed from a SpanBuilder after the run
	FIFODepthMax *GaugeVec   // per (stage, pipe) high-water mark

	admitted map[int64]bool
	depthMax map[stagePipe]int
}

// NewSimMetrics registers the standard metric set on r (nil r → nil
// metrics; the hook still works but records nothing beyond its own maps).
func NewSimMetrics(r *Registry) *SimMetrics {
	return &SimMetrics{
		Injected:     r.NewCounter("mp5_packets_injected_total", "packets offered to the switch (unique admissions plus ingress drops)"),
		Completed:    r.NewCounter("mp5_packets_completed_total", "packets that egressed"),
		Drops:        r.NewCounterVec("mp5_packets_dropped_total", "packet deaths by cause", "cause"),
		PhantomDrops: r.NewCounter("mp5_phantom_drops_total", "phantom placeholders lost to stage-FIFO overflow"),
		ShardMoves:   r.NewCounter("mp5_shard_moves_total", "dynamic-sharding register-entry migrations"),
		Steers:       r.NewCounter("mp5_crossbar_steers_total", "inter-pipeline packet crossings"),
		Events:       r.NewCounterVec("mp5_events_total", "raw trace events by kind", "kind"),
		Latency:      r.NewHistogram("mp5_packet_latency_cycles", "completed-packet latency (cycles, admit to egress)", 0, 4096, 1024, 0.5, 0.9, 0.99),
		FIFODepthMax: r.NewGaugeVec("mp5_fifo_depth_max", "event-reconstructed per-(stage,pipe) queue high-water mark", "stage", "pipe"),
		admitted:     make(map[int64]bool),
		depthMax:     make(map[stagePipe]int),
	}
}

// Hook returns the trace consumer maintaining the metric set. Like the
// sampler and span builder it keeps a little per-packet state, so one hook
// serves one run.
func (m *SimMetrics) Hook() func(core.Event) {
	occ := make(map[stagePipe]int)
	enqLoc := make(map[int64]stagePipe)
	dec := func(loc stagePipe) {
		occ[loc]--
		if occ[loc] == 0 {
			delete(occ, loc)
		}
	}
	return func(e core.Event) {
		m.Events.Inc(e.Kind.String())
		switch e.Kind {
		case core.EvAdmit:
			if !m.admitted[e.PktID] {
				m.admitted[e.PktID] = true
				m.Injected.Inc()
			}
		case core.EvEgress:
			m.Completed.Inc()
		case core.EvDrop:
			m.Drops.Inc(e.Cause.String())
			// A drop of a never-admitted packet (ingress overflow)
			// still counts as offered load.
			if !m.admitted[e.PktID] {
				m.admitted[e.PktID] = true
				m.Injected.Inc()
			}
			if loc, ok := enqLoc[e.PktID]; ok {
				dec(loc)
				delete(enqLoc, e.PktID)
			}
		case core.EvPhantomDrop:
			m.PhantomDrops.Inc()
		case core.EvShardMove:
			m.ShardMoves.Inc()
		case core.EvSteer:
			m.Steers.Inc()
		case core.EvEnqueue:
			loc := stagePipe{e.Stage, e.Pipe}
			occ[loc]++
			enqLoc[e.PktID] = loc
			if occ[loc] > m.depthMax[loc] {
				m.depthMax[loc] = occ[loc]
				m.FIFODepthMax.Set(float64(occ[loc]),
					fmt.Sprint(loc.stage), fmt.Sprint(loc.pipe))
			}
		case core.EvExec:
			if loc, ok := enqLoc[e.PktID]; ok && loc.stage == e.Stage {
				dec(loc)
				delete(enqLoc, e.PktID)
			}
		}
	}
}

// Reconcile compares the event-derived counters against the simulator's
// Result and returns a list of mismatches (empty = exact agreement). Only
// meaningful when the metrics' hook saw the whole run.
func (m *SimMetrics) Reconcile(r *core.Result) []string {
	var bad []string
	check := func(name string, got, want int64) {
		if got != want {
			bad = append(bad, fmt.Sprintf("%s: events say %d, result says %d", name, got, want))
		}
	}
	check("injected", m.Injected.Value(), r.Injected)
	check("completed", m.Completed.Value(), r.Completed)
	check("dropped/data", m.Drops.Value(core.CauseData.String()), r.DroppedData)
	check("dropped/insert", m.Drops.Value(core.CauseInsert.String()), r.DroppedInsert)
	check("dropped/ingress", m.Drops.Value(core.CauseIngress.String()), r.DroppedIngress)
	check("dropped/starved", m.Drops.Value(core.CauseStarved.String()), r.DroppedStarved)
	check("phantom drops", m.PhantomDrops.Value(), r.DroppedPhantom)
	check("shard moves", m.ShardMoves.Value(), r.ShardMoves)
	check("conservation", m.Completed.Value()+m.Drops.Total(), m.Injected.Value())
	return bad
}
