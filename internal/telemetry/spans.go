package telemetry

import (
	"math"
	"sync"

	"mp5/internal/core"
	"mp5/internal/stats"
)

// Span is one packet's lifecycle folded out of the event stream: admission
// into stage 0, preemptive resolution, per-stage FIFO waits, and egress or
// drop. Latency is end-to-end from the first admission — which, for the
// recirculation baseline, excludes any wait in the ingress buffer before
// the packet first enters a pipeline. QueueWait is the total cycles spent
// queued in stage FIFOs (or the ideal queue) and Service is the rest —
// stage marching, crossbar transit, and recirculation passes.
type Span struct {
	Type      string `json:"type"` // always "span"
	ID        int64  `json:"pkt"`
	Admit     int64  `json:"admit"`
	Resolve   int64  `json:"resolve"`
	End       int64  `json:"end"`
	Latency   int64  `json:"latency"`
	QueueWait int64  `json:"queue_wait"`
	Service   int64  `json:"service"`
	Steers    int    `json:"steers,omitempty"`
	Recircs   int    `json:"recircs,omitempty"`
	Dropped   bool   `json:"dropped,omitempty"`
	Cause     string `json:"cause,omitempty"`
}

// spanState is the in-flight bookkeeping for one live packet.
type spanState struct {
	admit    int64
	resolve  int64
	enqCycle int64
	enqStage int
	queued   bool
	wait     int64
	steers   int
	recircs  int
}

// LatencySummary aggregates the completed-packet latency distribution. The
// quantiles come from an integer-bucketed histogram (stats.Histogram with
// Quantile interpolation) — no latency slice is ever sorted.
type LatencySummary struct {
	Completed int64   `json:"completed"`
	Dropped   int64   `json:"dropped"`
	Mean      float64 `json:"mean"`
	P50       int64   `json:"p50"`
	P90       int64   `json:"p90"`
	P99       int64   `json:"p99"`
	Max       int64   `json:"max"`
	// MeanQueueWait and MeanService split the mean latency into FIFO
	// waiting and everything else.
	MeanQueueWait float64 `json:"mean_queue_wait"`
	MeanService   float64 `json:"mean_service"`
}

// SpanBuilder folds trace events into per-packet Spans. A non-nil sink
// receives every finished span (completions and drops alike) as it closes —
// called with the builder's mutex held, so the sink itself need not lock;
// aggregates are always collected and served by Summary. Pure trace
// consumer: attach Hook via core.Config.Trace. Safe for concurrent
// emitters: observation and every accessor serialize on an internal mutex.
type SpanBuilder struct {
	mu   sync.Mutex
	sink func(Span)

	live      map[int64]*spanState
	latencies []int64
	dropped   int64
	sumWait   float64
	sumServe  float64
}

// NewSpanBuilder builds a span builder; sink may be nil (aggregates only).
func NewSpanBuilder(sink func(Span)) *SpanBuilder {
	return &SpanBuilder{sink: sink, live: make(map[int64]*spanState)}
}

// Hook returns the trace function to pass as core.Config.Trace.
func (b *SpanBuilder) Hook() func(core.Event) {
	return func(e core.Event) { b.observe(e) }
}

func (b *SpanBuilder) observe(e core.Event) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch e.Kind {
	case core.EvAdmit:
		st, ok := b.live[e.PktID]
		if !ok {
			b.live[e.PktID] = &spanState{admit: e.Cycle, resolve: -1}
		} else {
			// Re-admission: a recirculation pass through the
			// pipelines.
			st.recircs++
		}
	case core.EvResolve:
		if st, ok := b.live[e.PktID]; ok && st.resolve < 0 {
			st.resolve = e.Cycle
		}
	case core.EvEnqueue:
		if st, ok := b.live[e.PktID]; ok {
			st.queued = true
			st.enqCycle = e.Cycle
			st.enqStage = e.Stage
		}
	case core.EvExec:
		if st, ok := b.live[e.PktID]; ok && st.queued && st.enqStage == e.Stage {
			st.wait += e.Cycle - st.enqCycle
			st.queued = false
		}
	case core.EvSteer:
		if st, ok := b.live[e.PktID]; ok {
			st.steers++
		}
	case core.EvEgress:
		b.finish(e, false)
	case core.EvDrop:
		b.finish(e, true)
	}
}

func (b *SpanBuilder) finish(e core.Event, dropped bool) {
	st, ok := b.live[e.PktID]
	if !ok {
		return
	}
	delete(b.live, e.PktID)
	lat := e.Cycle - st.admit
	sp := Span{
		Type: "span", ID: e.PktID,
		Admit: st.admit, Resolve: st.resolve, End: e.Cycle,
		Latency: lat, QueueWait: st.wait, Service: lat - st.wait,
		Steers: st.steers, Recircs: st.recircs,
		Dropped: dropped,
	}
	if dropped {
		sp.Cause = e.Cause.String()
		b.dropped++
	} else {
		b.latencies = append(b.latencies, lat)
		b.sumWait += float64(st.wait)
		b.sumServe += float64(lat - st.wait)
	}
	if b.sink != nil {
		b.sink(sp)
	}
}

// Live returns the number of packets still in flight (0 after a drained
// run).
func (b *SpanBuilder) Live() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.live)
}

// Summary computes the latency distribution of completed packets. The
// histogram uses unit-width buckets when the max latency fits 64Ki buckets
// (exact quantiles) and scales the width up beyond that.
func (b *SpanBuilder) Summary() LatencySummary {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := LatencySummary{Completed: int64(len(b.latencies)), Dropped: b.dropped}
	if len(b.latencies) == 0 {
		return s
	}
	var sum, maxL int64
	for _, l := range b.latencies {
		sum += l
		if l > maxL {
			maxL = l
		}
	}
	s.Mean = float64(sum) / float64(len(b.latencies))
	s.Max = maxL
	s.MeanQueueWait = b.sumWait / float64(len(b.latencies))
	s.MeanService = b.sumServe / float64(len(b.latencies))
	n := int(maxL) + 1
	if n > 1<<16 {
		n = 1 << 16
	}
	h := stats.NewHistogram(0, float64(maxL)+1, n)
	for _, l := range b.latencies {
		h.Add(float64(l))
	}
	q := func(p float64) int64 {
		v := h.Quantile(p)
		if math.IsNaN(v) {
			return 0
		}
		if int64(v) > maxL {
			return maxL
		}
		return int64(v)
	}
	s.P50, s.P90, s.P99 = q(0.5), q(0.9), q(0.99)
	return s
}

// FillHistogram feeds every completed-packet latency into a registry
// histogram metric (for the Prometheus snapshot).
func (b *SpanBuilder) FillHistogram(h *Histogram) {
	if h == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.latencies {
		h.Observe(float64(l))
	}
}
