package telemetry_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/telemetry"
	"mp5/internal/workload"
)

// ---- registry ----

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *telemetry.Registry
	c := r.NewCounter("c", "")
	v := r.NewCounterVec("v", "", "label")
	g := r.NewGauge("g", "")
	gv := r.NewGaugeVec("gv", "", "a", "b")
	h := r.NewHistogram("h", "", 0, 10, 10)
	if c != nil || v != nil || g != nil || gv != nil || h != nil {
		t.Fatal("nil registry must return nil metrics")
	}
	// Every operation on the nil metrics must be safe.
	c.Inc()
	c.Add(3)
	v.Inc("x")
	g.Set(1)
	gv.Set(2, "x", "y")
	h.Observe(5)
	h.Rotate()
	if c.Value() != 0 || v.Total() != 0 || g.Value() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if r.PromString() != "" {
		t.Fatal("nil registry must render empty")
	}
}

func TestCounterAndVec(t *testing.T) {
	r := telemetry.NewRegistry()
	c := r.NewCounter("mp5_test_total", "help text")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	v := r.NewCounterVec("mp5_test_by_cause_total", "by cause", "cause")
	v.Inc("data")
	v.Add("data", 2)
	v.Inc("insert")
	if v.Value("data") != 3 || v.Value("insert") != 1 || v.Value("absent") != 0 {
		t.Fatalf("vec values wrong: %d %d", v.Value("data"), v.Value("insert"))
	}
	if v.Total() != 4 {
		t.Fatalf("vec total = %d, want 4", v.Total())
	}
	out := r.PromString()
	for _, want := range []string{
		"# HELP mp5_test_total help text",
		"# TYPE mp5_test_total counter",
		"mp5_test_total 5",
		`mp5_test_by_cause_total{cause="data"} 3`,
		`mp5_test_by_cause_total{cause="insert"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
}

func TestGaugeAndVec(t *testing.T) {
	r := telemetry.NewRegistry()
	g := r.NewGauge("mp5_test_gauge", "")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %g", g.Value())
	}
	g.Set(-1)
	if g.Value() != -1 {
		t.Fatalf("gauge after reset = %g", g.Value())
	}
	gv := r.NewGaugeVec("mp5_test_depth", "", "stage", "pipe")
	gv.Set(7, "2", "1")
	gv.Set(3, "0", "0")
	out := r.PromString()
	if !strings.Contains(out, `mp5_test_depth{stage="2",pipe="1"} 7`) {
		t.Errorf("gauge vec missing labelled sample:\n%s", out)
	}
	// Deterministic ordering: "0,0" sorts before "2,1".
	if strings.Index(out, `stage="0"`) > strings.Index(out, `stage="2"`) {
		t.Error("gauge vec samples not sorted")
	}
}

func TestDuplicateMetricPanics(t *testing.T) {
	r := telemetry.NewRegistry()
	r.NewCounter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	r.NewCounter("dup", "")
}

func TestWindowedHistogram(t *testing.T) {
	r := telemetry.NewRegistry()
	h := r.NewHistogram("mp5_test_latency", "", 0, 100, 100, 0.5)
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 10 {
		t.Fatalf("count = %d", h.Count())
	}
	med := h.Quantile(0.5)
	if med < 5 || med > 7 {
		t.Fatalf("median = %g, want ~5.5", med)
	}
	// Rotate: old observations stay visible (merged window)...
	h.Rotate()
	if med2 := h.Quantile(0.5); med2 != med {
		t.Fatalf("median changed after one rotate: %g vs %g", med2, med)
	}
	// ...until a second rotate discards them.
	h.Rotate()
	h.Observe(90)
	q := h.Quantile(0.5)
	if q < 90 || q >= 91 {
		t.Fatalf("after double rotate quantile should reflect only new data, got %g", q)
	}
	// Cumulative stats survive rotation.
	if h.Count() != 11 {
		t.Fatalf("cumulative count = %d, want 11", h.Count())
	}
	out := r.PromString()
	for _, want := range []string{
		"# TYPE mp5_test_latency summary",
		`mp5_test_latency{quantile="0.5"}`,
		"mp5_test_latency_sum 145",
		"mp5_test_latency_count 11",
		"mp5_test_latency_max 90",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("summary output missing %q:\n%s", want, out)
		}
	}
}

// ---- sampler ----

func ev(cycle int64, kind core.EventKind, pkt int64, stage, pipe int) core.Event {
	return core.Event{Cycle: cycle, Kind: kind, PktID: pkt, Stage: stage, Pipe: pipe}
}

func TestSamplerIntervals(t *testing.T) {
	var samples []telemetry.Sample
	s := telemetry.NewSampler(10, 2, func(sm telemetry.Sample) { samples = append(samples, sm) })
	hook := s.Hook()
	hook(ev(0, core.EvAdmit, 1, -1, 0))
	hook(ev(2, core.EvSteer, 1, 1, 1))
	hook(ev(5, core.EvEgress, 1, -1, 1))
	// Jump two intervals ahead: the gap interval must still be emitted.
	hook(ev(25, core.EvAdmit, 2, -1, 0))
	hook(ev(27, core.EvEgress, 2, -1, 0))
	s.Close()

	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3 (incl. the empty gap)", len(samples))
	}
	s0, s1, s2 := samples[0], samples[1], samples[2]
	if s0.Cycle != 0 || s0.Admitted != 1 || s0.Egressed != 1 || s0.Steers != 1 {
		t.Errorf("interval 0 = %+v", s0)
	}
	if s0.Tput != 0.1 {
		t.Errorf("tput = %g, want 0.1", s0.Tput)
	}
	if s0.CrossbarUtil != 1.0/20 {
		t.Errorf("crossbar util = %g, want 0.05", s0.CrossbarUtil)
	}
	if s1.Cycle != 10 || s1.Admitted != 0 || s1.Egressed != 0 {
		t.Errorf("gap interval = %+v", s1)
	}
	if s2.Cycle != 20 || s2.Admitted != 1 || s2.Egressed != 1 {
		t.Errorf("interval 2 = %+v", s2)
	}
}

func TestSamplerOccupancy(t *testing.T) {
	var samples []telemetry.Sample
	s := telemetry.NewSampler(10, 1, func(sm telemetry.Sample) { samples = append(samples, sm) })
	hook := s.Hook()
	// Packet 1: phantom at (2,0), then data lands (phantom retires,
	// data occupies), still queued at the interval boundary.
	hook(ev(1, core.EvPhantom, 1, 2, 0))
	hook(ev(2, core.EvEnqueue, 1, 2, 0))
	// Packet 2: phantom still outstanding at the boundary.
	hook(ev(3, core.EvPhantom, 2, 3, 0))
	// Cross the boundary.
	hook(ev(11, core.EvExec, 1, 2, 0))
	de := ev(12, core.EvDrop, 2, 3, 0)
	de.Cause = core.CauseData
	hook(de)
	s.Close()

	if len(samples) != 2 {
		t.Fatalf("got %d samples", len(samples))
	}
	s0 := samples[0]
	if len(s0.FIFODepth) != 1 || s0.FIFODepth[0] != (telemetry.StageDepth{Stage: 2, Pipe: 0, Depth: 1}) {
		t.Errorf("interval 0 fifo depth = %+v", s0.FIFODepth)
	}
	if len(s0.PhantomDepth) != 1 || s0.PhantomDepth[0] != (telemetry.StageDepth{Stage: 3, Pipe: 0, Depth: 1}) {
		t.Errorf("interval 0 phantom depth = %+v", s0.PhantomDepth)
	}
	// After the exec and the drop everything is empty again.
	s1 := samples[1]
	if len(s1.FIFODepth) != 0 || len(s1.PhantomDepth) != 0 {
		t.Errorf("interval 1 should be drained: %+v / %+v", s1.FIFODepth, s1.PhantomDepth)
	}
	if s1.Drops["data"] != 1 {
		t.Errorf("interval 1 drops = %+v", s1.Drops)
	}
}

// ---- span builder ----

func TestSpanBuilderBreakdown(t *testing.T) {
	var spans []telemetry.Span
	b := telemetry.NewSpanBuilder(func(sp telemetry.Span) { spans = append(spans, sp) })
	hook := b.Hook()
	hook(ev(10, core.EvAdmit, 1, -1, 0))
	hook(ev(11, core.EvResolve, 1, 0, 0))
	hook(ev(12, core.EvEnqueue, 1, 3, 1))
	hook(ev(17, core.EvExec, 1, 3, 1)) // 5 cycles queued
	hook(ev(20, core.EvEgress, 1, -1, 1))
	// A dropped packet.
	hook(ev(30, core.EvAdmit, 2, -1, 0))
	de := ev(34, core.EvDrop, 2, 1, 0)
	de.Cause = core.CauseData
	hook(de)

	if b.Live() != 0 {
		t.Fatalf("live = %d", b.Live())
	}
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	sp := spans[0]
	if sp.Latency != 10 || sp.QueueWait != 5 || sp.Service != 5 {
		t.Errorf("span = %+v, want latency 10 = 5 wait + 5 service", sp)
	}
	if sp.Admit != 10 || sp.Resolve != 11 || sp.End != 20 || sp.Dropped {
		t.Errorf("span fields = %+v", sp)
	}
	dsp := spans[1]
	if !dsp.Dropped || dsp.Cause != "data" || dsp.Latency != 4 {
		t.Errorf("drop span = %+v", dsp)
	}
	sum := b.Summary()
	if sum.Completed != 1 || sum.Dropped != 1 {
		t.Errorf("summary counts = %+v", sum)
	}
	if sum.Mean != 10 || sum.MeanQueueWait != 5 || sum.MeanService != 5 || sum.Max != 10 {
		t.Errorf("summary stats = %+v", sum)
	}
	if sum.P50 != 10 || sum.P99 != 10 {
		t.Errorf("summary quantiles = %+v", sum)
	}
}

func TestSpanBuilderRecircPasses(t *testing.T) {
	b := telemetry.NewSpanBuilder(nil)
	hook := b.Hook()
	hook(ev(0, core.EvAdmit, 1, -1, 0))
	hook(ev(5, core.EvAdmit, 1, -1, 1)) // recirculation pass
	hook(ev(6, core.EvAdmit, 1, -1, 0)) // another
	hook(ev(9, core.EvEgress, 1, -1, 0))
	sum := b.Summary()
	if sum.Completed != 1 || sum.Mean != 9 {
		t.Fatalf("summary = %+v", sum)
	}
}

// ---- integration: a real run reconciles exactly ----

func setupRun(t testing.TB, cfg core.Config, packets int) (*core.Simulator, []core.Arrival) {
	t.Helper()
	prog, err := apps.Synthetic(3, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: packets, Pipelines: cfg.Pipelines, Pattern: workload.Skewed, Seed: 7,
	}, 3, 64)
	return core.NewSimulator(prog, cfg), trace
}

func TestSimMetricsReconcile(t *testing.T) {
	cfgs := map[string]core.Config{
		"mp5":         {Arch: core.ArchMP5, Pipelines: 4, Seed: 2},
		"mp5-drops":   {Arch: core.ArchMP5, Pipelines: 4, Seed: 2, FIFOCap: 2},
		"nod4-drops":  {Arch: core.ArchMP5NoD4, Pipelines: 4, Seed: 2, FIFOCap: 2},
		"recirc-tiny": {Arch: core.ArchRecirc, Pipelines: 4, Seed: 2, RecircIngressCap: 2},
		"starved":     {Arch: core.ArchMP5, Pipelines: 4, Seed: 2, StarveThreshold: 4},
	}
	for name, cfg := range cfgs {
		t.Run(name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			m := telemetry.NewSimMetrics(reg)
			spans := telemetry.NewSpanBuilder(nil)
			cfg.Trace = telemetry.Tee(m.Hook(), spans.Hook())
			sim, trace := setupRun(t, cfg, 3000)
			res := sim.Run(trace)
			if bad := m.Reconcile(res); len(bad) > 0 {
				t.Fatalf("reconciliation failed:\n  %s", strings.Join(bad, "\n  "))
			}
			if spans.Live() != 0 {
				t.Errorf("%d spans still live after a drained run", spans.Live())
			}
			sum := spans.Summary()
			if sum.Completed != res.Completed {
				t.Errorf("span completions %d != Result %d", sum.Completed, res.Completed)
			}
			// The span latency histogram replaces the scalar
			// MeanLatency computation — they must agree wherever
			// admission is immediate. (The recirculation baseline
			// buffers packets at ingress before their first admit
			// event, so spans exclude that wait by design.)
			if res.Completed > 0 && cfg.Arch != core.ArchRecirc {
				diff := sum.Mean - res.MeanLatency
				if diff < -1e-9 || diff > 1e-9 {
					t.Errorf("span mean %g != Result mean %g", sum.Mean, res.MeanLatency)
				}
				if sum.P99 != res.P99Latency {
					t.Errorf("span p99 %d != Result p99 %d", sum.P99, res.P99Latency)
				}
			}
			if cfg.Arch == core.ArchRecirc && res.Completed > 0 && sum.Mean > res.MeanLatency+1e-9 {
				t.Errorf("span mean %g exceeds arrival-based mean %g", sum.Mean, res.MeanLatency)
			}
		})
	}
}

func TestReconcileDetectsMismatch(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := telemetry.NewSimMetrics(reg)
	cfg := core.Config{Arch: core.ArchMP5, Pipelines: 4, Seed: 2, Trace: m.Hook()}
	sim, trace := setupRun(t, cfg, 500)
	res := sim.Run(trace)
	res.Completed++ // corrupt the result
	if bad := m.Reconcile(res); len(bad) == 0 {
		t.Fatal("reconcile missed a corrupted result")
	}
}

// ---- JSONL ----

func TestJSONLStream(t *testing.T) {
	var buf bytes.Buffer
	j := telemetry.NewJSONL(&buf)
	sampler := telemetry.NewSampler(100, 4, j.SampleSink())
	spans := telemetry.NewSpanBuilder(j.SpanSink())
	cfg := core.Config{
		Arch: core.ArchMP5, Pipelines: 4, Seed: 2,
		Trace: telemetry.Tee(j.EventHook(), sampler.Hook(), spans.Hook()),
	}
	sim, trace := setupRun(t, cfg, 800)
	res := sim.Run(trace)
	sampler.Close()
	j.Object(map[string]any{"type": "run", "completed": res.Completed})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	// Every line is a valid, type-tagged JSON object; the per-type
	// tallies are consistent with the run.
	counts := map[string]int64{}
	var egressEvents, accessEvents, sampleEgress, spanCount int64
	sc := bufio.NewScanner(&buf)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		typ, _ := rec["type"].(string)
		counts[typ]++
		switch typ {
		case "event":
			if rec["kind"] == "egress" {
				egressEvents++
			}
			if rec["kind"] == "access" {
				accessEvents++
				if s, _ := rec["state"].(string); !strings.HasPrefix(s, "r") || !strings.Contains(s, "[") {
					t.Fatalf("access event without a state key: %v", rec)
				}
			} else if _, ok := rec["state"]; ok {
				t.Fatalf("non-access event carries a state key: %v", rec)
			}
		case "sample":
			sampleEgress += int64(rec["egressed"].(float64))
		case "span":
			spanCount++
		case "run":
		default:
			t.Fatalf("unknown record type %q", typ)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if counts["event"] == 0 || counts["sample"] == 0 || counts["run"] != 1 {
		t.Fatalf("record counts = %+v", counts)
	}
	if egressEvents != res.Completed {
		t.Errorf("egress events %d != completed %d", egressEvents, res.Completed)
	}
	if sampleEgress != res.Completed {
		t.Errorf("samples account for %d egresses, want %d", sampleEgress, res.Completed)
	}
	if spanCount != res.Injected {
		t.Errorf("spans %d != injected %d", spanCount, res.Injected)
	}
	if accessEvents == 0 {
		t.Error("stateful program produced no access events in the stream")
	}
}
