package tenant

import (
	"fmt"
	"strconv"
	"strings"
)

// Spec is one tenant's boot configuration, parsed from the mp5d command
// line (`-tenant NAME=FILE[@quota]`, repeatable).
type Spec struct {
	// Name is the tenant's registry name (must be unique across specs).
	Name string
	// File is the path of the tenant's Domino program source.
	File string
	// Quota is the tenant's admission quota in in-flight packets;
	// 0 = unlimited.
	Quota int
}

// ParseSpec parses one NAME=FILE[@quota] tenant argument. The quota suffix
// is split on the LAST '@' so file paths containing '@' still parse when a
// quota is present.
func ParseSpec(arg string) (Spec, error) {
	eq := strings.Index(arg, "=")
	if eq < 0 {
		return Spec{}, fmt.Errorf("tenant spec %q: want NAME=FILE[@quota]", arg)
	}
	sp := Spec{Name: strings.TrimSpace(arg[:eq])}
	rest := arg[eq+1:]
	if at := strings.LastIndex(rest, "@"); at >= 0 {
		q, err := strconv.Atoi(rest[at+1:])
		if err != nil || q <= 0 {
			return Spec{}, fmt.Errorf("tenant spec %q: quota %q is not a positive integer", arg, rest[at+1:])
		}
		sp.Quota = q
		rest = rest[:at]
	}
	sp.File = strings.TrimSpace(rest)
	if sp.Name == "" {
		return Spec{}, fmt.Errorf("tenant spec %q: empty tenant name", arg)
	}
	if sp.File == "" {
		return Spec{}, fmt.Errorf("tenant spec %q: empty program file", arg)
	}
	return sp, nil
}

// ValidateSpecs rejects inconsistent tenant sets up front, before anything
// is compiled or bound: duplicate names, and (when window > 0) any single
// quota at or above the shared admission window — such a quota can never
// bind, which almost certainly means the operator misunderstood the unit.
func ValidateSpecs(specs []Spec, window int) error {
	seen := make(map[string]bool, len(specs))
	for _, sp := range specs {
		if seen[sp.Name] {
			return fmt.Errorf("duplicate tenant name %q", sp.Name)
		}
		seen[sp.Name] = true
		if window > 0 && sp.Quota >= window && sp.Quota > 0 {
			return fmt.Errorf("tenant %q: quota %d >= window %d (quota would never bind)", sp.Name, sp.Quota, window)
		}
	}
	return nil
}
