// Package tenant is the multi-tenant control plane over one shared
// dataplane engine: a registry of named tenants, each running its own
// compiled program in an isolated dataplane.Handle namespace (registers,
// ticket queues, shard map, frame pool) behind a stable uint16 wire id,
// with an optional admission quota that outlives program versions, and a
// versioned zero-downtime hot-swap protocol.
//
// The swap protocol is epoch-by-admission, not drain-and-restart: Swap
// builds the new version's handle completely (fresh register state at the
// program's declared initial values), registers it on the running engine,
// and then flips the tenant's active pointer atomically. The admitter
// snapshots the active version per admission run, so every packet is
// admitted on exactly one version; packets admitted before the flip finish
// on the old version's registers and ticket queues, packets after start on
// the new ones, and the C1 per-slot access-order contract holds within
// each version because each version has its own admission-ordered ticket
// queues. No traffic is drained, paused, or reordered.
package tenant

import (
	"fmt"
	"sync"
	"sync/atomic"

	"mp5/internal/dataplane"
	"mp5/internal/ir"
)

// Version is one immutable program version of a tenant: the compiled
// program and its live dataplane handle. Seq starts at 1 and increments
// per swap (per tenant).
type Version struct {
	Seq    int
	Prog   *ir.Program
	Handle *dataplane.Handle
}

// Tenant is one named tenant: a stable wire id, an admission quota shared
// by all its versions (in-flight packets of a superseded version still
// hold — and return — the same quota's tokens), and the atomically
// swappable active version. All versions are retained: a superseded
// version keeps draining its in-flight packets on its own handle, and its
// final state stays inspectable after the run.
type Tenant struct {
	id    uint16
	name  string
	quota *dataplane.Quota

	active atomic.Pointer[Version]

	mu       sync.Mutex
	versions []*Version
}

// ID returns the tenant's wire id (the codec frame's tenant field).
func (t *Tenant) ID() uint16 { return t.id }

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// Quota returns the tenant's admission quota (nil = unlimited).
func (t *Tenant) Quota() *dataplane.Quota { return t.quota }

// Active returns the tenant's current version (any goroutine; the
// admitter's per-run snapshot point — one load defines the swap epoch for
// everything admitted in that run).
func (t *Tenant) Active() *Version { return t.active.Load() }

// Versions snapshots all versions in swap order, oldest first.
func (t *Tenant) Versions() []*Version {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Version(nil), t.versions...)
}

// Registry maps tenant names and wire ids to live tenants on one engine.
// Add and Swap are safe to call while the engine serves traffic (the hot
// paths — ByID, Active — are lock-free).
type Registry struct {
	eng *dataplane.Engine

	mu     sync.Mutex
	byName map[string]*Tenant
	// byID[id] is the tenant with wire id id; ids are dense registration
	// indices. The slice is copy-on-write behind an atomic pointer so the
	// per-packet decode path resolves ids without a lock.
	byID atomic.Pointer[[]*Tenant]
}

// NewRegistry builds an empty registry over eng. The engine may already be
// running — tenants can be added to a live daemon.
func NewRegistry(eng *dataplane.Engine) *Registry {
	r := &Registry{eng: eng, byName: make(map[string]*Tenant)}
	empty := make([]*Tenant, 0)
	r.byID.Store(&empty)
	return r
}

// Engine returns the shared dataplane engine.
func (r *Registry) Engine() *dataplane.Engine { return r.eng }

// Add registers a new tenant running prog with an admission quota of quota
// packets (<= 0 = unlimited), assigning the next wire id. Fails on a
// duplicate name or an exhausted id space.
func (r *Registry) Add(name string, prog *ir.Program, quota int) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("tenant: empty name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; ok {
		return nil, fmt.Errorf("tenant: duplicate name %q", name)
	}
	cur := *r.byID.Load()
	if len(cur) > 0xFFFF {
		return nil, fmt.Errorf("tenant: id space exhausted (65536 tenants)")
	}
	t := &Tenant{
		id:    uint16(len(cur)),
		name:  name,
		quota: dataplane.NewQuota(quota),
	}
	v := &Version{
		Seq:    1,
		Prog:   prog,
		Handle: r.eng.AddProgram(handleName(name, 1), prog, t.quota),
	}
	t.versions = []*Version{v}
	t.active.Store(v)
	r.byName[name] = t
	next := append(append(make([]*Tenant, 0, len(cur)+1), cur...), t)
	r.byID.Store(&next)
	return t, nil
}

// Swap hot-swaps tenant name to prog with zero downtime: the new version's
// handle is fully built and registered on the live engine before the
// active pointer flips, so admissions that snapshot the old version keep
// flowing on it while later admissions start on the new one. The new
// program must declare the same number of header fields as the old one —
// the wire frame layout is the tenant's external contract and cannot
// change under live clients.
func (r *Registry) Swap(name string, prog *ir.Program) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("tenant: unknown tenant %q", name)
	}
	old := t.active.Load()
	if len(prog.Fields) != len(old.Prog.Fields) {
		return nil, fmt.Errorf("tenant: swap for %q changes field count %d -> %d (wire contract)",
			name, len(old.Prog.Fields), len(prog.Fields))
	}
	v := &Version{
		Seq:    old.Seq + 1,
		Prog:   prog,
		Handle: r.eng.AddProgram(handleName(name, old.Seq+1), prog, t.quota),
	}
	t.mu.Lock()
	t.versions = append(t.versions, v)
	t.mu.Unlock()
	t.active.Store(v) // the swap epoch: admission runs after this load the new version
	return v, nil
}

// ByID resolves a wire id to its tenant (nil if unassigned). Lock-free —
// the per-packet decode path.
func (r *Registry) ByID(id uint16) *Tenant {
	cur := *r.byID.Load()
	if int(id) >= len(cur) {
		return nil
	}
	return cur[id]
}

// ByName resolves a tenant name (nil if unknown).
func (r *Registry) ByName(name string) *Tenant {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.byName[name]
}

// Tenants snapshots all tenants in wire-id order.
func (r *Registry) Tenants() []*Tenant {
	cur := *r.byID.Load()
	return append([]*Tenant(nil), cur...)
}

// handleName is the engine-side name of one tenant version's handle —
// distinct per version so engine-level stats tell versions apart.
func handleName(name string, seq int) string {
	if seq == 1 {
		return name
	}
	return fmt.Sprintf("%s@v%d", name, seq)
}
