package tenant

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"mp5/internal/apps"
	"mp5/internal/dataplane"
	"mp5/internal/equiv"
	"mp5/internal/workload"
)

func TestRegistryAddAndLookup(t *testing.T) {
	prog, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	eng := dataplane.NewMulti(dataplane.Config{Workers: 1})
	r := NewRegistry(eng)
	a, err := r.Add("alpha", prog, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.Add("beta", prog, 32)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID() != 0 || b.ID() != 1 {
		t.Fatalf("wire ids not dense: %d, %d", a.ID(), b.ID())
	}
	if r.ByID(0) != a || r.ByID(1) != b || r.ByID(2) != nil {
		t.Fatal("ByID lookup wrong")
	}
	if r.ByName("alpha") != a || r.ByName("nope") != nil {
		t.Fatal("ByName lookup wrong")
	}
	if got := r.Tenants(); len(got) != 2 || got[0] != a || got[1] != b {
		t.Fatalf("Tenants snapshot wrong: %v", got)
	}
	if a.Quota() != nil {
		t.Fatal("unlimited tenant got a quota")
	}
	if b.Quota() == nil || b.Quota().Cap() != 32 {
		t.Fatal("quota tenant's quota wrong")
	}
	if v := a.Active(); v == nil || v.Seq != 1 || v.Prog != prog || v.Handle == nil {
		t.Fatalf("active version wrong: %+v", v)
	}
	if _, err := r.Add("alpha", prog, 0); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := r.Add("", prog, 0); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestSwapRejectsFieldCountChange(t *testing.T) {
	progA, err := apps.Synthetic(2, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := apps.Synthetic(3, 16, 16) // one more header field
	if err != nil {
		t.Fatal(err)
	}
	if len(progA.Fields) == len(progB.Fields) {
		t.Fatalf("test wants distinct field counts, got %d and %d", len(progA.Fields), len(progB.Fields))
	}
	eng := dataplane.NewMulti(dataplane.Config{Workers: 1})
	r := NewRegistry(eng)
	if _, err := r.Add("alpha", progA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Swap("alpha", progB); err == nil || !strings.Contains(err.Error(), "field count") {
		t.Fatalf("field-count-changing swap not rejected: %v", err)
	}
	if _, err := r.Swap("ghost", progA); err == nil {
		t.Fatal("swap of unknown tenant accepted")
	}
}

// TestSwapUnderLoad is the registry-level zero-downtime proof: traffic
// flows on v1, Swap flips to v2 mid-stream with no drain, traffic continues
// on v2 — and each version independently matches its own single-pipeline
// reference (state, outputs, C1 access order), with in-flight v1 packets
// finishing on v1's registers.
func TestSwapUnderLoad(t *testing.T) {
	progA, err := apps.Synthetic(3, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	progB, err := apps.Synthetic(3, 64, 16) // same field count, different sharding shape
	if err != nil {
		t.Fatal(err)
	}
	if len(progA.Fields) != len(progB.Fields) {
		t.Fatalf("test wants equal field counts, got %d vs %d", len(progA.Fields), len(progB.Fields))
	}
	arrsA := workload.Synthetic(progA, workload.Spec{Packets: 700, Pipelines: 4, Seed: 31}, 3, 32)
	arrsB := workload.Synthetic(progB, workload.Spec{Packets: 700, Pipelines: 4, Seed: 32}, 3, 64)
	eng := dataplane.NewMulti(dataplane.Config{Workers: 4, Window: 64, RecordOutputs: true, RecordAccessOrder: true})
	r := NewRegistry(eng)
	tn, err := r.Add("alpha", progA, 48)
	if err != nil {
		t.Fatal(err)
	}
	eng.Start()
	v1 := tn.Active()
	// Both phases submit the way the daemon does: snapshot the active
	// version once per run, SubmitBatchTo its handle, and (closed-loop)
	// retry any quota-shed tail — off only advances by what was admitted,
	// so admission order stays the arrival order.
	off := 0
	for off < len(arrsA) {
		v := tn.Active()
		end := min(off+53, len(arrsA))
		got := eng.SubmitBatchTo(v.Handle, arrsA[off:end], nil)
		off += got
		if got == 0 {
			time.Sleep(100 * time.Microsecond) // quota full: wait for egress
		}
	}
	// The flip: no drain, no pause. In-flight v1 packets keep running.
	v2, err := r.Swap("alpha", progB)
	if err != nil {
		t.Fatal(err)
	}
	if tn.Active() != v2 || v2.Seq != 2 {
		t.Fatalf("active version did not flip: %+v", tn.Active())
	}
	// Phase 2: v2 traffic through the same snapshot discipline.
	off = 0
	for off < len(arrsB) {
		v := tn.Active()
		if v != v2 {
			t.Fatal("active version regressed")
		}
		end := min(off+53, len(arrsB))
		got := eng.SubmitBatchTo(v.Handle, arrsB[off:end], nil)
		off += got
		if got == 0 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	res := eng.Drain()
	if res.Stalled || res.Completed != int64(len(arrsA)+len(arrsB)) {
		t.Fatalf("%d of %d completed (stalled=%v)", res.Completed, len(arrsA)+len(arrsB), res.Stalled)
	}
	// Each version against its own reference: the C1 contract holds within
	// each version.
	if rep := equiv.CheckState(progA, eng.FinalRegsFor(v1.Handle), eng.OutputsFor(v1.Handle), arrsA); !rep.Equivalent {
		t.Fatalf("v1 not equivalent to its reference:\n%s", rep)
	}
	if rep := equiv.CheckState(progB, eng.FinalRegsFor(v2.Handle), eng.OutputsFor(v2.Handle), arrsB); !rep.Equivalent {
		t.Fatalf("v2 not equivalent to its reference:\n%s", rep)
	}
	if !reflect.DeepEqual(equiv.ReferenceOrder(progA, arrsA), eng.AccessOrdersFor(v1.Handle)) {
		t.Fatal("v1 access order diverged")
	}
	if !reflect.DeepEqual(equiv.ReferenceOrder(progB, arrsB), eng.AccessOrdersFor(v2.Handle)) {
		t.Fatal("v2 access order diverged")
	}
	// The quota is shared across versions and fully returned after drain.
	if got := tn.Quota().InUse(); got != 0 {
		t.Fatalf("quota leaked %d tokens across the swap", got)
	}
	if vs := tn.Versions(); len(vs) != 2 || vs[0] != v1 || vs[1] != v2 {
		t.Fatalf("version history wrong: %v", vs)
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		in   string
		want Spec
		bad  string // non-empty = expect an error containing this
	}{
		{in: "alpha=prog.dm", want: Spec{Name: "alpha", File: "prog.dm"}},
		{in: "alpha=prog.dm@64", want: Spec{Name: "alpha", File: "prog.dm", Quota: 64}},
		{in: "a=dir@x/p.dm@8", want: Spec{Name: "a", File: "dir@x/p.dm", Quota: 8}},
		{in: "noequals", bad: "want NAME=FILE"},
		{in: "=prog.dm", bad: "empty tenant name"},
		{in: "alpha=", bad: "empty program file"},
		{in: "alpha=p.dm@zero", bad: "not a positive integer"},
		{in: "alpha=p.dm@0", bad: "not a positive integer"},
		{in: "alpha=p.dm@-3", bad: "not a positive integer"},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.in)
		if c.bad != "" {
			if err == nil || !strings.Contains(err.Error(), c.bad) {
				t.Fatalf("ParseSpec(%q): want error containing %q, got %v", c.in, c.bad, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseSpec(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestValidateSpecs(t *testing.T) {
	ok := []Spec{{Name: "a", File: "a.dm", Quota: 16}, {Name: "b", File: "b.dm"}}
	if err := ValidateSpecs(ok, 256); err != nil {
		t.Fatalf("valid specs rejected: %v", err)
	}
	dup := []Spec{{Name: "a", File: "a.dm"}, {Name: "a", File: "b.dm"}}
	if err := ValidateSpecs(dup, 256); err == nil || !strings.Contains(err.Error(), "duplicate tenant name") {
		t.Fatalf("duplicate names not rejected: %v", err)
	}
	wide := []Spec{{Name: "a", File: "a.dm", Quota: 256}}
	if err := ValidateSpecs(wide, 256); err == nil || !strings.Contains(err.Error(), "never bind") {
		t.Fatalf("window-wide quota not rejected: %v", err)
	}
}
