// Package viz renders simulator traces as human-readable views — most
// usefully a pipeline-occupancy timeline: one row per (pipeline, stage),
// one column per cycle, each cell the packet id the stage executed that
// cycle. It makes the architecture's behaviour visible at a glance:
// inline packets marching diagonally, queued packets holding a stateful
// stage, bubbles where a FIFO blocks on a phantom.
package viz

import (
	"fmt"
	"strings"

	"mp5/internal/core"
)

// Timeline accumulates EvExec events over a cycle window.
type Timeline struct {
	stages    int
	pipes     int
	start     int64
	cycles    int
	occ       map[[3]int64]int64 // (cycle, stage, pipe) → packet id
	sawExec   bool
	maxSeen   int64
	lastCycle int64
}

// NewTimeline captures cycles [start, start+cycles).
func NewTimeline(stages, pipes int, start int64, cycles int) *Timeline {
	if stages <= 0 || pipes <= 0 || cycles <= 0 {
		panic("viz: timeline needs positive dimensions")
	}
	return &Timeline{
		stages: stages,
		pipes:  pipes,
		start:  start,
		cycles: cycles,
		occ:    make(map[[3]int64]int64),
	}
}

// Hook returns the trace function to pass as core.Config.Trace. Combine
// with other consumers via Tee.
func (t *Timeline) Hook() func(core.Event) {
	return func(e core.Event) {
		if e.Kind != core.EvExec {
			return
		}
		if e.Cycle < t.start || e.Cycle >= t.start+int64(t.cycles) {
			return
		}
		key := [3]int64{e.Cycle, int64(e.Stage), int64(e.Pipe)}
		if _, dup := t.occ[key]; dup {
			panic(fmt.Sprintf("viz: two packets executed in stage %d pipe %d cycle %d",
				e.Stage, e.Pipe, e.Cycle))
		}
		t.occ[key] = e.PktID
		t.sawExec = true
		if e.PktID > t.maxSeen {
			t.maxSeen = e.PktID
		}
		if e.Cycle > t.lastCycle {
			t.lastCycle = e.Cycle
		}
	}
}

// Render returns the occupancy grid as text. Empty cells print as dots.
func (t *Timeline) Render() string {
	if !t.sawExec {
		return "(no executions in the captured window)\n"
	}
	width := len(fmt.Sprint(t.maxSeen))
	if width < 2 {
		width = 2
	}
	last := int(t.lastCycle-t.start) + 1
	if last > t.cycles {
		last = t.cycles
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s", "")
	for c := 0; c < last; c++ {
		fmt.Fprintf(&b, " %*d", width, t.start+int64(c))
	}
	b.WriteString("\n")
	for pipe := 0; pipe < t.pipes; pipe++ {
		for stage := 0; stage < t.stages; stage++ {
			fmt.Fprintf(&b, "p%d.s%-4d", pipe, stage)
			for c := 0; c < last; c++ {
				key := [3]int64{t.start + int64(c), int64(stage), int64(pipe)}
				if id, ok := t.occ[key]; ok {
					fmt.Fprintf(&b, " %*d", width, id)
				} else {
					fmt.Fprintf(&b, " %*s", width, strings.Repeat(".", width))
				}
			}
			b.WriteString("\n")
		}
		if pipe != t.pipes-1 {
			b.WriteString("\n")
		}
	}
	return b.String()
}

// Tee fans one trace hook out to several consumers.
func Tee(hooks ...func(core.Event)) func(core.Event) {
	return func(e core.Event) {
		for _, h := range hooks {
			if h != nil {
				h(e)
			}
		}
	}
}
