package viz_test

import (
	"strings"
	"testing"

	"mp5/internal/apps"
	"mp5/internal/core"
	"mp5/internal/viz"
	"mp5/internal/workload"
)

func TestTimelineRendersSyntheticEvents(t *testing.T) {
	tl := viz.NewTimeline(2, 2, 0, 4)
	hook := tl.Hook()
	// Packet 0 marches through pipe 0; packet 1 through pipe 1, one
	// cycle behind.
	hook(core.Event{Cycle: 0, Kind: core.EvExec, PktID: 0, Stage: 0, Pipe: 0})
	hook(core.Event{Cycle: 1, Kind: core.EvExec, PktID: 0, Stage: 1, Pipe: 0})
	hook(core.Event{Cycle: 1, Kind: core.EvExec, PktID: 1, Stage: 0, Pipe: 1})
	hook(core.Event{Cycle: 2, Kind: core.EvExec, PktID: 1, Stage: 1, Pipe: 1})
	// Non-exec events are ignored.
	hook(core.Event{Cycle: 0, Kind: core.EvEgress, PktID: 9, Stage: 1, Pipe: 1})
	out := tl.Render()
	for _, want := range []string{"p0.s0", "p1.s1", " 0", " 1"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 2 stages × 2 pipes + 1 blank separator.
	if len(lines) != 1+4+1 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
}

func TestTimelineEmptyWindow(t *testing.T) {
	tl := viz.NewTimeline(2, 2, 100, 4)
	if out := tl.Render(); !strings.Contains(out, "no executions") {
		t.Errorf("empty render = %q", out)
	}
}

func TestTimelineDoubleOccupancyPanics(t *testing.T) {
	tl := viz.NewTimeline(1, 1, 0, 2)
	hook := tl.Hook()
	hook(core.Event{Cycle: 0, Kind: core.EvExec, PktID: 0, Stage: 0, Pipe: 0})
	defer func() {
		if recover() == nil {
			t.Fatal("double occupancy not detected")
		}
	}()
	hook(core.Event{Cycle: 0, Kind: core.EvExec, PktID: 1, Stage: 0, Pipe: 0})
}

// TestTimelineOnRealRun drives a real simulation through the hook and
// checks the diagonal march of an inline packet.
func TestTimelineOnRealRun(t *testing.T) {
	prog, err := apps.Synthetic(1, 64, 16)
	if err != nil {
		t.Fatal(err)
	}
	trace := workload.Synthetic(prog, workload.Spec{
		Packets: 40, Pipelines: 2, Seed: 1,
	}, 1, 64)
	tl := viz.NewTimeline(prog.NumStages(), 2, 0, 30)
	var events int
	sim := core.NewSimulator(prog, core.Config{
		Arch: core.ArchMP5, Pipelines: 2, Seed: 1,
		Trace: viz.Tee(tl.Hook(), func(core.Event) { events++ }),
	})
	res := sim.Run(trace)
	if res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	if events == 0 {
		t.Fatal("tee did not fan out")
	}
	out := tl.Render()
	// Packet 0 enters pipe 0 stage 0 at cycle 0 and, unobstructed,
	// executes stage i at cycle i.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[1], " 0") {
		t.Errorf("packet 0 missing from p0.s0 row:\n%s", out)
	}
}
