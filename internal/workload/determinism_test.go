package workload

import (
	"fmt"
	"testing"

	"mp5/internal/core"
)

// TestSameSeedIdenticalBytes pins the strongest determinism contract across
// every trace generator: two runs with the same seed must produce traces
// that are identical in EVERY exported arrival field (rendered to bytes and
// compared wholesale), not merely equal in length and a spot-checked field.
// The replication engine (internal/screp) leans on this directly — a
// packet's position in the trace IS its global sequence number, so a
// nondeterministic generator would make replicated runs unreproducible even
// with identical seeds.
func TestSameSeedIdenticalBytes(t *testing.T) {
	prog := synthProg(t, 3, 64)
	bind := func(f *Flow, p *PktCtx, fields []int64) {
		fields[0] = f.ID % 64
		if len(fields) > 1 {
			fields[1] = int64(p.Seq) + p.Rng.Int63n(8)
		}
	}
	gens := map[string]func() []core.Arrival{
		"synthetic": func() []core.Arrival {
			return Synthetic(prog, Spec{
				Packets: 1500, Pipelines: 4, Seed: 77, Pattern: Skewed,
			}, 3, 64)
		},
		"random-fields": func() []core.Arrival {
			return RandomFields(prog, Spec{Packets: 1500, Pipelines: 4, Seed: 77})
		},
		"flows": func() []core.Arrival {
			return Flows(prog, FlowSpec{Packets: 1500, Pipelines: 4, Seed: 77}, bind)
		},
		"fuzz": func() []core.Arrival {
			return FuzzTrace(prog, fuzzSpec(77))
		},
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			a, b := gen(), gen()
			ab, bb := fmt.Sprintf("%+v", a), fmt.Sprintf("%+v", b)
			if ab != bb {
				i := 0
				for i < len(a) && fmt.Sprintf("%+v", a[i]) == fmt.Sprintf("%+v", b[i]) {
					i++
				}
				t.Fatalf("same seed diverged at arrival %d:\nrun1 %+v\nrun2 %+v", i, a[i], b[i])
			}
			if len(a) == 0 {
				t.Fatal("generator produced an empty trace")
			}
		})
	}
}
