package workload

import (
	"math/rand"

	"mp5/internal/core"
	"mp5/internal/ir"
)

// Flow is one transport flow in a flow-level workload.
type Flow struct {
	// ID is a stable flow identifier.
	ID int64
	// SrcPort/DstPort form the flow key programs hash on.
	SrcPort int64
	DstPort int64
	// BytesLeft is the remaining flow size.
	BytesLeft int
	// Port is the switch input port the flow arrives on.
	Port int
}

// PktCtx describes one packet being emitted by the flow engine; binders
// translate it into program header fields.
type PktCtx struct {
	// ID is the packet's position in the trace.
	ID int64
	// Cycle is the arrival cycle.
	Cycle int64
	// Size is the packet size in bytes.
	Size int
	// Seq is the packet's index within its flow.
	Seq int
	// Rng gives binders deterministic per-trace randomness for
	// program-specific fields (e.g. CONGA's utilization samples).
	Rng *rand.Rand
}

// Binder fills a packet's header fields for a specific application program
// given the flow and packet context.
type Binder func(f *Flow, p *PktCtx, fields []int64)

// webSearchCDF approximates the DCTCP web-search flow-size distribution
// [Alizadeh et al., SIGCOMM'10] as used throughout the datacenter
// literature: heavy-tailed, with most flows small and most bytes in a few
// large flows. Sizes in bytes against cumulative probability.
var webSearchCDF = []struct {
	bytes int
	cum   float64
}{
	{1e3, 0.00},
	{2e3, 0.05},
	{3e3, 0.10},
	{5e3, 0.20},
	{7e3, 0.30},
	{10e3, 0.40},
	{15e3, 0.48},
	{30e3, 0.53},
	{50e3, 0.60},
	{80e3, 0.66},
	{200e3, 0.72},
	{1e6, 0.78},
	{2e6, 0.85},
	{5e6, 0.92},
	{10e6, 0.96},
	{30e6, 1.00},
}

// sampleWebSearchFlowSize draws a flow size (bytes) from the web-search
// distribution by inverse-transform sampling with log-linear interpolation
// between CDF knots.
func sampleWebSearchFlowSize(rng *rand.Rand) int {
	u := rng.Float64()
	prev := webSearchCDF[0]
	for _, pt := range webSearchCDF[1:] {
		if u <= pt.cum {
			span := pt.cum - prev.cum
			frac := 0.5
			if span > 0 {
				frac = (u - prev.cum) / span
			}
			size := float64(prev.bytes) + frac*float64(pt.bytes-prev.bytes)
			return int(size)
		}
		prev = pt
	}
	return webSearchCDF[len(webSearchCDF)-1].bytes
}

// FlowSpec parameterizes a flow-level application trace (§4.4: bimodal
// packet sizes, web-search flow sizes, line-rate arrivals).
type FlowSpec struct {
	// Packets is the trace length.
	Packets int
	// Pipelines is k (sets the line rate).
	Pipelines int
	// Ports is the number of switch ports.
	Ports int
	// Load is the offered load relative to line rate (default 1.0).
	Load float64
	// ActiveFlows is the number of concurrently active flows the engine
	// maintains (default 64); when a flow finishes, a new one starts.
	ActiveFlows int
	// Seed makes the trace reproducible.
	Seed int64
}

func (s FlowSpec) withDefaults() FlowSpec {
	if s.Pipelines == 0 {
		s.Pipelines = core.DefaultPipelines
	}
	if s.Ports == 0 {
		s.Ports = core.DefaultPorts
	}
	if s.Load == 0 {
		s.Load = 1.0
	}
	if s.ActiveFlows == 0 {
		s.ActiveFlows = 64
	}
	return s
}

// Flows generates an application trace: a pool of concurrently active
// web-search-sized flows emits bimodally-sized packets at line rate; the
// binder maps each packet onto the program's header fields.
func Flows(prog *ir.Program, spec FlowSpec, bind Binder) []core.Arrival {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	clock := newArrivalClock(spec.Pipelines, spec.Load)

	nextFlowID := int64(0)
	newFlow := func() *Flow {
		f := &Flow{
			ID:        nextFlowID,
			SrcPort:   int64(1024 + rng.Intn(60000)),
			DstPort:   int64(1 + rng.Intn(1024)),
			BytesLeft: sampleWebSearchFlowSize(rng),
			Port:      rng.Intn(spec.Ports),
		}
		nextFlowID++
		return f
	}
	active := make([]*Flow, spec.ActiveFlows)
	seqs := make(map[int64]int, spec.ActiveFlows)
	for i := range active {
		active[i] = newFlow()
	}

	sizeSpec := Spec{Sizes: SizeBimodal}
	arr := make([]core.Arrival, spec.Packets)
	for i := range arr {
		fi := rng.Intn(len(active))
		f := active[fi]
		size := drawSize(sizeSpec, rng)
		if size > f.BytesLeft {
			size = f.BytesLeft
		}
		if size < MinPacketSize {
			size = MinPacketSize
		}
		cycle := clock.next(size)
		fields := make([]int64, len(prog.Fields))
		ctx := &PktCtx{
			ID:    int64(i),
			Cycle: cycle,
			Size:  size,
			Seq:   seqs[f.ID],
			Rng:   rng,
		}
		bind(f, ctx, fields)
		arr[i] = core.Arrival{
			Cycle:  cycle,
			Port:   f.Port,
			Size:   size,
			Fields: fields,
		}
		seqs[f.ID]++
		f.BytesLeft -= size
		if f.BytesLeft <= 0 {
			delete(seqs, f.ID)
			active[fi] = newFlow()
		}
	}
	sortArrivals(arr)
	return arr
}
