package workload

import (
	"math/rand"

	"mp5/internal/core"
	"mp5/internal/ir"
)

// FuzzSpec parameterizes the randomized traces the differential fuzzing
// harness drives generated programs with. It layers three ordering hazards
// on top of Spec's arrival process and skew model: a bounded value domain
// (so data-dependent indices collide), packet bursts (back-to-back clones
// hammering the same state), and interleaved flows (recurring field
// templates revisiting the same indices from different ports).
type FuzzSpec struct {
	Spec
	// Domain bounds header-field values to [0, Domain); small domains
	// force index collisions and therefore ordering pressure (default
	// 1024).
	Domain int
	// Flows, when positive, draws each packet from one of this many
	// sticky field templates (a flow); fields mix the flow's base values
	// with fresh draws, so flows interleave on shared state.
	Flows int
	// BurstProb is the per-packet probability of starting a burst:
	// up to BurstLen-1 follow-up packets replay the same field vector at
	// consecutive arrivals (0 disables).
	BurstProb float64
	// BurstLen caps a burst's length (including its head packet).
	BurstLen int
}

func (fs FuzzSpec) withDefaults() FuzzSpec {
	fs.Spec = fs.Spec.withDefaults()
	if fs.Domain <= 0 {
		fs.Domain = 1024
	}
	return fs
}

// FuzzTrace generates a randomized arrival trace for an arbitrary compiled
// program: every header field is drawn from the spec's (possibly skewed)
// distribution over [0, Domain), shaped by flows and bursts. The trace is
// deterministic in the seed and sorted in the simulator's required
// (cycle, port) order.
func FuzzTrace(prog *ir.Program, fs FuzzSpec) []core.Arrival {
	fs = fs.withDefaults()
	spec := fs.Spec
	rng := rand.New(rand.NewSource(spec.Seed))
	clock := newArrivalClock(spec.Pipelines, spec.Load)
	// The index sampler doubles as the field-value sampler: skew over the
	// value domain translates into skew over every data-dependent index
	// the program computes from those fields.
	sampler := newIndexSampler(spec, fs.Domain, rand.New(rand.NewSource(spec.Seed+1)))

	var flows [][]int64
	if fs.Flows > 0 {
		flows = make([][]int64, fs.Flows)
		for i := range flows {
			base := make([]int64, len(prog.Fields))
			for j := range base {
				base[j] = int64(sampler.draw())
			}
			flows[i] = base
		}
	}

	arr := make([]core.Arrival, spec.Packets)
	burst := 0
	var burstFields []int64
	for i := range arr {
		size := drawSize(spec, rng)
		cycle := clock.next(size)
		sampler.maybeChurn(cycle)
		var fields []int64
		if burst > 0 {
			fields = append([]int64(nil), burstFields...)
			burst--
		} else {
			fields = make([]int64, len(prog.Fields))
			var base []int64
			if flows != nil {
				base = flows[rng.Intn(len(flows))]
			}
			for j := range fields {
				if base != nil && rng.Intn(2) == 0 {
					fields[j] = base[j]
				} else {
					fields[j] = int64(sampler.draw())
				}
			}
			if fs.BurstLen > 1 && fs.BurstProb > 0 && rng.Float64() < fs.BurstProb {
				burst = rng.Intn(fs.BurstLen-1) + 1
				burstFields = fields
			}
		}
		arr[i] = core.Arrival{
			Cycle:  cycle,
			Port:   rng.Intn(spec.Ports),
			Size:   size,
			Fields: fields,
		}
	}
	sortArrivals(arr)
	return arr
}
