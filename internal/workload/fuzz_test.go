package workload

import (
	"testing"
)

// fuzzSpec builds a FuzzSpec with every hazard enabled.
func fuzzSpec(seed int64) FuzzSpec {
	return FuzzSpec{
		Spec: Spec{
			Packets: 2000, Pipelines: 4, Pattern: Skewed, Seed: seed,
		},
		Domain: 32, Flows: 4, BurstProb: 0.2, BurstLen: 5,
	}
}

func TestFuzzTraceDeterministic(t *testing.T) {
	prog := synthProg(t, 2, 64)
	a := FuzzTrace(prog, fuzzSpec(9))
	b := FuzzTrace(prog, fuzzSpec(9))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cycle != b[i].Cycle || a[i].Port != b[i].Port {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
		for j := range a[i].Fields {
			if a[i].Fields[j] != b[i].Fields[j] {
				t.Fatalf("arrival %d field %d differs", i, j)
			}
		}
	}
	c := FuzzTrace(prog, fuzzSpec(10))
	same := true
	for i := range a {
		if a[i].Cycle != c[i].Cycle || a[i].Port != c[i].Port {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestFuzzTraceSortedAndBounded(t *testing.T) {
	prog := synthProg(t, 2, 64)
	fs := fuzzSpec(3)
	arr := FuzzTrace(prog, fs)
	if len(arr) != fs.Packets {
		t.Fatalf("got %d arrivals, want %d", len(arr), fs.Packets)
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].Cycle < arr[i-1].Cycle {
			t.Fatalf("arrival %d out of cycle order", i)
		}
		if arr[i].Cycle == arr[i-1].Cycle && arr[i].Port < arr[i-1].Port {
			t.Fatalf("arrival %d out of port order within cycle %d", i, arr[i].Cycle)
		}
	}
	for i, a := range arr {
		for j, v := range a.Fields {
			if v < 0 || v >= int64(fs.Domain) {
				t.Fatalf("arrival %d field %d = %d outside [0, %d)", i, j, v, fs.Domain)
			}
		}
	}
}

// TestFuzzTraceSkew: with the skewed pattern, the hot fraction of the value
// domain must dominate draws (§4.3.1's two-level pattern, repurposed for
// field values).
func TestFuzzTraceSkew(t *testing.T) {
	prog := synthProg(t, 1, 64)
	fs := FuzzSpec{
		Spec:   Spec{Packets: 5000, Pipelines: 4, Pattern: Skewed, Seed: 5},
		Domain: 100,
	}
	arr := FuzzTrace(prog, fs)
	counts := map[int64]int{}
	total := 0
	for _, a := range arr {
		for _, v := range a.Fields {
			counts[v]++
			total++
		}
	}
	// Hot set is 30% of the domain and draws 95% of values: the top 30
	// values must hold clearly more than a uniform share.
	type kv struct {
		v int64
		n int
	}
	var top []kv
	for v, n := range counts {
		top = append(top, kv{v, n})
	}
	for i := 0; i < len(top); i++ {
		for j := i + 1; j < len(top); j++ {
			if top[j].n > top[i].n {
				top[i], top[j] = top[j], top[i]
			}
		}
	}
	hot := 0
	for i := 0; i < 30 && i < len(top); i++ {
		hot += top[i].n
	}
	if frac := float64(hot) / float64(total); frac < 0.8 {
		t.Fatalf("hot-30 fraction %.2f, want skew near 0.95", frac)
	}
}

// TestFuzzTraceBursts: bursts replay field vectors back to back.
func TestFuzzTraceBursts(t *testing.T) {
	prog := synthProg(t, 2, 64)
	fs := FuzzSpec{
		Spec:      Spec{Packets: 2000, Pipelines: 4, Seed: 8},
		Domain:    1024,
		BurstProb: 0.3, BurstLen: 4,
	}
	arr := FuzzTrace(prog, fs)
	repeats := 0
	for i := 1; i < len(arr); i++ {
		same := true
		for j := range arr[i].Fields {
			if arr[i].Fields[j] != arr[i-1].Fields[j] {
				same = false
				break
			}
		}
		if same {
			repeats++
		}
	}
	// With a large domain, adjacent identical field vectors are
	// overwhelmingly burst clones; expect a healthy count.
	if repeats < 100 {
		t.Fatalf("only %d adjacent clones; bursts not happening", repeats)
	}
}
