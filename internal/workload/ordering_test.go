package workload

import (
	"fmt"
	"testing"

	"mp5/internal/compiler"
	"mp5/internal/core"
	"mp5/internal/ir"
)

// The simulator, the dataplane admitter, and now the network daemon all
// assume traces arrive in non-decreasing (cycle, port) order — admission
// order is what C1 is defined against, so a generator that emitted
// out-of-order arrivals would silently weaken every differential check.
// These tests pin that invariant across every generator and knob.

// orderingProgram compiles a 3-stage synthetic program inline (the apps
// package that normally builds it imports workload, so the test can't).
func orderingProgram(t *testing.T) *ir.Program {
	t.Helper()
	src := `struct Packet {
    int stateless;
    int h0;
    int h1;
    int h2;
};

int reg0 [64] = {0};
int reg1 [64] = {0};
int reg2 [64] = {0};

void synth (struct Packet p) {
    if (p.stateless == 0) {
        reg0[p.h0 % 64] = reg0[p.h0 % 64] + 1;
        reg1[p.h1 % 64] = reg1[p.h1 % 64] + 1;
        reg2[p.h2 % 64] = reg2[p.h2 % 64] + 1;
    }
}
`
	prog, err := compiler.Compile(src, compiler.Options{Target: compiler.TargetMP5, MaxStages: 16})
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// checkOrdered asserts the (cycle, port) sort the simulator requires plus
// per-packet sanity (size floor, fields allocated for the program).
func checkOrdered(t *testing.T, name string, prog *ir.Program, arr []core.Arrival) {
	t.Helper()
	if len(arr) == 0 {
		t.Fatalf("%s: empty trace", name)
	}
	for i, a := range arr {
		if i > 0 {
			prev := arr[i-1]
			if a.Cycle < prev.Cycle {
				t.Fatalf("%s: packet %d arrives at cycle %d after cycle %d", name, i, a.Cycle, prev.Cycle)
			}
			if a.Cycle == prev.Cycle && a.Port < prev.Port {
				t.Fatalf("%s: packet %d port %d after port %d in cycle %d", name, i, a.Port, prev.Port, a.Cycle)
			}
		}
		if a.Size < MinPacketSize && a.Size != 0 {
			t.Fatalf("%s: packet %d size %d below the %dB floor", name, i, a.Size, MinPacketSize)
		}
		if len(a.Fields) != len(prog.Fields) {
			t.Fatalf("%s: packet %d carries %d fields, program wants %d", name, i, len(a.Fields), len(prog.Fields))
		}
	}
}

// TestSyntheticOrdering sweeps Synthetic across patterns, size models,
// loads, and churn: every combination must emit a (cycle, port)-ordered
// trace.
func TestSyntheticOrdering(t *testing.T) {
	prog := orderingProgram(t)
	for _, pat := range []Pattern{Uniform, Skewed} {
		for _, sizes := range []SizeModel{SizeFixed, SizeBimodal} {
			for _, load := range []float64{0.25, 1.0, 4.0} {
				name := fmt.Sprintf("%v/%d/load%.2f", pat, sizes, load)
				arr := Synthetic(prog, Spec{
					Packets: 2000, Pipelines: 4, Seed: 11,
					Pattern: pat, Sizes: sizes, Load: load,
					ZipfS: 1.2, ChurnInterval: 500,
				}, 3, 64)
				checkOrdered(t, name, prog, arr)
			}
		}
	}
}

// TestRandomFieldsOrdering covers the arbitrary-program generator.
func TestRandomFieldsOrdering(t *testing.T) {
	prog := orderingProgram(t)
	for _, sizes := range []SizeModel{SizeFixed, SizeBimodal} {
		arr := RandomFields(prog, Spec{Packets: 2000, Pipelines: 2, Seed: 3, Sizes: sizes})
		checkOrdered(t, fmt.Sprintf("randomfields/%d", sizes), prog, arr)
	}
}

// TestFuzzTraceOrderingAcrossBursts covers the fuzz generator, whose burst
// clones replay the same field vector at consecutive clock ticks — the
// burst boundary is exactly where a buggy generator would emit a cycle
// regression.
func TestFuzzTraceOrderingAcrossBursts(t *testing.T) {
	prog := orderingProgram(t)
	for _, pat := range []Pattern{Uniform, Skewed} {
		for seed := int64(1); seed <= 5; seed++ {
			fs := FuzzSpec{
				Spec: Spec{
					Packets: 3000, Pipelines: 4, Seed: seed,
					Pattern: pat, Sizes: SizeBimodal,
				},
				Domain: 64, Flows: 8, BurstProb: 0.3, BurstLen: 6,
			}
			arr := FuzzTrace(prog, fs)
			checkOrdered(t, fmt.Sprintf("fuzz/%v/seed%d", pat, seed), prog, arr)
			// Bursts must actually occur for this test to mean anything:
			// look for at least one pair of consecutive identical field
			// vectors.
			found := false
			for i := 1; i < len(arr) && !found; i++ {
				found = fieldsEqual(arr[i].Fields, arr[i-1].Fields)
			}
			if !found {
				t.Fatalf("fuzz/%v/seed%d: no burst clones in 3000 packets at BurstProb 0.3", pat, seed)
			}
		}
	}
}

func fieldsEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestArrivalClockMonotone pins the clock primitive itself: for any mix of
// packet sizes and loads, emitted cycles never decrease, and line rate
// (load 1, 64B, k pipelines) admits exactly k packets per cycle.
func TestArrivalClockMonotone(t *testing.T) {
	sizes := []int{64, 64, 1400, 64, 200, 9000, 64, 175, 1400, 64}
	for _, k := range []int{1, 4} {
		for _, load := range []float64{0.1, 1.0, 8.0} {
			c := newArrivalClock(k, load)
			last := int64(-1)
			for rep := 0; rep < 100; rep++ {
				for _, sz := range sizes {
					cyc := c.next(sz)
					if cyc < last {
						t.Fatalf("k=%d load=%.1f: clock went backwards %d → %d", k, load, last, cyc)
					}
					last = cyc
				}
			}
		}
	}

	c := newArrivalClock(4, 1.0)
	perCycle := map[int64]int{}
	for i := 0; i < 400; i++ {
		perCycle[c.next(64)]++
	}
	for cyc, n := range perCycle {
		if n != 4 {
			t.Fatalf("line rate at k=4: cycle %d admits %d packets, want 4", cyc, n)
		}
	}
}

// TestSortArrivalsStable checks the tie-breaking pass: same-cycle arrivals
// are reordered by port, distinct cycles never move, and the sort is
// stable within (cycle, port) so packet identity survives.
func TestSortArrivalsStable(t *testing.T) {
	arr := []core.Arrival{
		{Cycle: 0, Port: 2, Fields: []int64{0}},
		{Cycle: 0, Port: 1, Fields: []int64{1}},
		{Cycle: 0, Port: 1, Fields: []int64{2}},
		{Cycle: 1, Port: 0, Fields: []int64{3}},
		{Cycle: 1, Port: 3, Fields: []int64{4}},
		{Cycle: 1, Port: 1, Fields: []int64{5}},
	}
	sortArrivals(arr)
	wantPorts := []int{1, 1, 2, 0, 1, 3}
	wantField0 := []int64{1, 2, 0, 3, 5, 4}
	for i := range arr {
		if arr[i].Port != wantPorts[i] || arr[i].Fields[0] != wantField0[i] {
			t.Fatalf("slot %d: got port %d field %d, want port %d field %d",
				i, arr[i].Port, arr[i].Fields[0], wantPorts[i], wantField0[i])
		}
	}
}
