// Package workload generates deterministic, seeded packet-arrival traces
// for the simulator: line-rate arrival processes, packet-size models (fixed
// 64 B worst case and the bimodal datacenter distribution), state-access
// patterns (uniform and skewed, §4.3.1), and heavy-tailed web-search flow
// workloads for the real-application experiments (§4.4).
package workload

import (
	"fmt"
	"math/rand"

	"mp5/internal/core"
	"mp5/internal/ir"
)

// Pattern selects the synthetic state-access pattern (§4.3.1).
type Pattern int

const (
	// Uniform: each register index is accessed by roughly the same
	// number of packets.
	Uniform Pattern = iota
	// Skewed: most packets (HotWeight) access a small fraction
	// (HotFraction) of the indices, uniformly within the hot set
	// (§4.3.1: "most packets (95%) access only a small fraction of
	// states (30%)"). Set ZipfS > 0 for an additionally heavy-tailed
	// hot set.
	Skewed
)

// String names the pattern.
func (p Pattern) String() string {
	if p == Uniform {
		return "uniform"
	}
	return "skewed"
}

// SizeModel selects the packet-size distribution.
type SizeModel int

const (
	// SizeFixed uses Spec.PacketSize for every packet (64 B stresses
	// the switch with the worst-case inter-arrival time).
	SizeFixed SizeModel = iota
	// SizeBimodal draws sizes clustered around 200 B and 1400 B, the
	// shape commonly observed in datacenters [Benson et al., IMC'10].
	SizeBimodal
)

// Defaults for the synthetic generator, matching §4.3.1.
const (
	DefaultHotFraction = 0.30
	DefaultHotWeight   = 0.95
	MinPacketSize      = 64
)

// Spec parameterizes a synthetic trace.
type Spec struct {
	// Packets is the trace length.
	Packets int
	// Pipelines is k: the line rate equals k minimum-size packets per
	// cycle, so a packet of S bytes advances time by S/(64k·Load).
	Pipelines int
	// Ports is the number of input ports packets are spread over.
	Ports int
	// Load is the offered load relative to line rate (default 1.0; the
	// paper's sensitivity experiments always offer line rate).
	Load float64
	// PacketSize is the fixed size for SizeFixed (default 64).
	PacketSize int
	// Sizes selects the size model.
	Sizes SizeModel
	// Pattern selects the access pattern for synthetic programs.
	Pattern Pattern
	// HotFraction / HotWeight tune the skewed pattern; ZipfS > 0
	// additionally skews picks within the hot set (0 = uniform,
	// the paper's two-level pattern).
	HotFraction float64
	HotWeight   float64
	ZipfS       float64
	// ChurnInterval, when positive, re-draws the hot set every that
	// many cycles, modelling flow churn; 0 keeps it fixed.
	ChurnInterval int64
	// StatelessFraction of packets perform no state accesses at all
	// (their access predicates resolve false), exercising stateless
	// prioritization; 0 disables.
	StatelessFraction float64
	// Seed makes the trace reproducible.
	Seed int64
}

func (s Spec) withDefaults() Spec {
	if s.Pipelines == 0 {
		s.Pipelines = core.DefaultPipelines
	}
	if s.Ports == 0 {
		s.Ports = core.DefaultPorts
	}
	if s.Load == 0 {
		s.Load = 1.0
	}
	if s.PacketSize == 0 {
		s.PacketSize = MinPacketSize
	}
	if s.HotFraction == 0 {
		s.HotFraction = DefaultHotFraction
	}
	if s.HotWeight == 0 {
		s.HotWeight = DefaultHotWeight
	}
	return s
}

// arrivalClock spaces packets at the offered load: a packet of size bytes
// advances virtual time by size/(64·k·load) cycles.
type arrivalClock struct {
	t       float64
	perByte float64
}

func newArrivalClock(k int, load float64) *arrivalClock {
	return &arrivalClock{perByte: 1.0 / (float64(MinPacketSize) * float64(k) * load)}
}

// next returns the arrival cycle for a packet of the given size and
// advances the clock.
func (c *arrivalClock) next(size int) int64 {
	cycle := int64(c.t)
	c.t += float64(size) * c.perByte
	return cycle
}

// indexSampler draws register indices under a Spec's pattern.
type indexSampler struct {
	spec     Spec
	size     int
	rng      *rand.Rand
	perm     []int
	hotCount int
	zipf     *rand.Zipf
	nextRot  int64
}

func newIndexSampler(spec Spec, size int, rng *rand.Rand) *indexSampler {
	s := &indexSampler{spec: spec, size: size, rng: rng}
	s.perm = rng.Perm(size)
	s.hotCount = int(float64(size) * spec.HotFraction)
	if s.hotCount < 1 {
		s.hotCount = 1
	}
	if s.hotCount > 1 && s.hotCount < size && spec.Pattern == Skewed && spec.ZipfS > 1 {
		s.zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(s.hotCount-1))
	}
	if spec.ChurnInterval > 0 {
		s.nextRot = spec.ChurnInterval
	}
	return s
}

// maybeChurn re-permutes the hot set when the churn interval elapsed.
func (s *indexSampler) maybeChurn(cycle int64) {
	if s.spec.ChurnInterval <= 0 || cycle < s.nextRot {
		return
	}
	s.perm = s.rng.Perm(s.size)
	s.nextRot += s.spec.ChurnInterval
}

// draw returns one register index.
func (s *indexSampler) draw() int {
	if s.spec.Pattern == Uniform || s.hotCount >= s.size {
		return s.rng.Intn(s.size)
	}
	if s.rng.Float64() < s.spec.HotWeight {
		var r int
		if s.zipf != nil {
			r = int(s.zipf.Uint64())
		} else {
			r = s.rng.Intn(s.hotCount)
		}
		return s.perm[r]
	}
	return s.perm[s.hotCount+s.rng.Intn(s.size-s.hotCount)]
}

// drawSize returns one packet size under the spec's size model.
func drawSize(spec Spec, rng *rand.Rand) int {
	switch spec.Sizes {
	case SizeBimodal:
		// Clustered around 200 B and 1400 B (±25 B jitter), an even
		// split: the bimodal shape of datacenter traffic.
		base := 200
		if rng.Intn(2) == 1 {
			base = 1400
		}
		sz := base + rng.Intn(51) - 25
		if sz < MinPacketSize {
			sz = MinPacketSize
		}
		return sz
	default:
		return spec.PacketSize
	}
}

// Synthetic generates a trace for a synthetic program produced by
// apps.SyntheticSource: the program's fields h0..h{n-1} directly carry the
// register index each stateful stage will access (the program computes
// reg_i[h_i % size]). regSize must match the program's array size.
func Synthetic(prog *ir.Program, spec Spec, statefulStages, regSize int) []core.Arrival {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	clock := newArrivalClock(spec.Pipelines, spec.Load)

	fieldIdx := make([]int, statefulStages)
	for i := range fieldIdx {
		fi := prog.FieldIndex(fmt.Sprintf("h%d", i))
		if fi < 0 {
			panic(fmt.Sprintf("workload: program lacks field h%d", i))
		}
		fieldIdx[i] = fi
	}
	statelessIdx := prog.FieldIndex("stateless")

	samplers := make([]*indexSampler, statefulStages)
	for i := range samplers {
		samplers[i] = newIndexSampler(spec, regSize, rand.New(rand.NewSource(spec.Seed+int64(i)+1)))
	}

	arr := make([]core.Arrival, spec.Packets)
	for i := range arr {
		size := drawSize(spec, rng)
		cycle := clock.next(size)
		fields := make([]int64, len(prog.Fields))
		stateless := spec.StatelessFraction > 0 && rng.Float64() < spec.StatelessFraction
		if stateless && statelessIdx >= 0 {
			fields[statelessIdx] = 1
		}
		for s := range samplers {
			samplers[s].maybeChurn(cycle)
			fields[fieldIdx[s]] = int64(samplers[s].draw())
		}
		arr[i] = core.Arrival{
			Cycle:  cycle,
			Port:   rng.Intn(spec.Ports),
			Size:   size,
			Fields: fields,
		}
	}
	sortArrivals(arr)
	return arr
}

// RandomFields drives an arbitrary program with uniformly random header
// field values in [0, 1024) at the spec's offered load — useful for fuzzing
// user programs through mp5sim without a program-specific binder.
func RandomFields(prog *ir.Program, spec Spec) []core.Arrival {
	spec = spec.withDefaults()
	rng := rand.New(rand.NewSource(spec.Seed))
	clock := newArrivalClock(spec.Pipelines, spec.Load)
	arr := make([]core.Arrival, spec.Packets)
	for i := range arr {
		size := drawSize(spec, rng)
		fields := make([]int64, len(prog.Fields))
		for j := range fields {
			fields[j] = int64(rng.Intn(1024))
		}
		arr[i] = core.Arrival{
			Cycle:  clock.next(size),
			Port:   rng.Intn(spec.Ports),
			Size:   size,
			Fields: fields,
		}
	}
	sortArrivals(arr)
	return arr
}

// sortArrivals enforces the (cycle, port) order the simulator requires; the
// clock emits non-decreasing cycles, so only same-cycle port ties need
// fixing (stable insertion keeps packet ids meaningful).
func sortArrivals(arr []core.Arrival) {
	for i := 1; i < len(arr); i++ {
		j := i
		for j > 0 && arr[j-1].Cycle == arr[j].Cycle && arr[j-1].Port > arr[j].Port {
			arr[j-1], arr[j] = arr[j], arr[j-1]
			j--
		}
	}
}
