package workload

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"mp5/internal/ir"
)

// synthProg builds a fields-only program shaped like apps.SyntheticSource
// output (the generator only consults prog.Fields).
func synthProg(t *testing.T, stages, size int) *ir.Program {
	t.Helper()
	fields := []string{"stateless"}
	for i := 0; i < stages; i++ {
		fields = append(fields, fmt.Sprintf("h%d", i))
	}
	return &ir.Program{Name: "synth", Fields: fields}
}

func TestSyntheticTraceShape(t *testing.T) {
	prog := synthProg(t, 2, 64)
	spec := Spec{Packets: 5000, Pipelines: 4, Seed: 1}
	arr := Synthetic(prog, spec, 2, 64)
	if len(arr) != 5000 {
		t.Fatalf("length %d", len(arr))
	}
	// Sorted by (cycle, port).
	for i := 1; i < len(arr); i++ {
		a, b := arr[i-1], arr[i]
		if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.Port < a.Port) {
			t.Fatalf("unsorted at %d: %+v %+v", i, a, b)
		}
	}
	// Line rate: 64B packets at k=4 means 4 packets per cycle.
	span := arr[len(arr)-1].Cycle - arr[0].Cycle + 1
	rate := float64(len(arr)) / float64(span)
	if rate < 3.9 || rate > 4.1 {
		t.Errorf("arrival rate %.2f pkts/cycle, want ~4", rate)
	}
	// Index fields within range.
	h0 := prog.FieldIndex("h0")
	for _, a := range arr {
		if idx := a.Fields[h0]; idx < 0 || idx >= 64 {
			t.Fatalf("index %d out of range", idx)
		}
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	prog := synthProg(t, 2, 64)
	spec := Spec{Packets: 1000, Pipelines: 4, Seed: 42, Pattern: Skewed}
	a := Synthetic(prog, spec, 2, 64)
	b := Synthetic(prog, spec, 2, 64)
	for i := range a {
		if a[i].Cycle != b[i].Cycle || a[i].Port != b[i].Port || a[i].Fields[1] != b[i].Fields[1] {
			t.Fatalf("trace not deterministic at %d", i)
		}
	}
	spec.Seed = 43
	c := Synthetic(prog, spec, 2, 64)
	same := true
	for i := range a {
		if a[i].Fields[1] != c[i].Fields[1] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestSkewedPatternConcentration(t *testing.T) {
	prog := synthProg(t, 1, 100)
	spec := Spec{Packets: 20000, Pipelines: 4, Seed: 5, Pattern: Skewed}
	arr := Synthetic(prog, spec, 1, 100)
	h0 := prog.FieldIndex("h0")
	counts := map[int64]int{}
	for _, a := range arr {
		counts[a.Fields[h0]]++
	}
	// The hot set is 30 of 100 indexes; it must receive ~95% of accesses.
	type kv struct {
		idx int64
		n   int
	}
	var all []kv
	for i, n := range counts {
		all = append(all, kv{i, n})
	}
	// Partial selection: count the top 30.
	top := 0
	for pass := 0; pass < 30; pass++ {
		best := -1
		for i := range all {
			if all[i].n >= 0 && (best < 0 || all[i].n > all[best].n) {
				best = i
			}
		}
		top += all[best].n
		all[best].n = -1
	}
	frac := float64(top) / float64(len(arr))
	if frac < 0.90 || frac > 0.99 {
		t.Errorf("top-30 fraction = %.3f, want ~0.95", frac)
	}
}

func TestUniformPatternSpread(t *testing.T) {
	prog := synthProg(t, 1, 64)
	arr := Synthetic(prog, Spec{Packets: 64000, Pipelines: 4, Seed: 9}, 1, 64)
	h0 := prog.FieldIndex("h0")
	counts := make([]int, 64)
	for _, a := range arr {
		counts[a.Fields[h0]]++
	}
	for i, n := range counts {
		if n < 700 || n > 1300 {
			t.Errorf("index %d count %d far from uniform mean 1000", i, n)
		}
	}
}

func TestChurnRotatesHotSet(t *testing.T) {
	prog := synthProg(t, 1, 100)
	spec := Spec{Packets: 40000, Pipelines: 4, Seed: 5, Pattern: Skewed, ChurnInterval: 1000}
	arr := Synthetic(prog, spec, 1, 100)
	h0 := prog.FieldIndex("h0")
	early := map[int64]int{}
	late := map[int64]int{}
	for _, a := range arr {
		if a.Cycle < 1000 {
			early[a.Fields[h0]]++
		}
		if a.Cycle > 8000 {
			late[a.Fields[h0]]++
		}
	}
	// The hot sets should differ: count heavy indexes present early but
	// not late.
	diff := 0
	for idx, n := range early {
		if n > 20 && late[idx] <= 20 {
			diff++
		}
	}
	if diff < 5 {
		t.Errorf("hot set barely rotated (%d indexes changed)", diff)
	}
}

func TestPacketSizesAffectArrivalRate(t *testing.T) {
	prog := synthProg(t, 1, 16)
	small := Synthetic(prog, Spec{Packets: 4000, Pipelines: 4, PacketSize: 64, Seed: 1}, 1, 16)
	big := Synthetic(prog, Spec{Packets: 4000, Pipelines: 4, PacketSize: 640, Seed: 1}, 1, 16)
	spanSmall := small[len(small)-1].Cycle - small[0].Cycle
	spanBig := big[len(big)-1].Cycle - big[0].Cycle
	ratio := float64(spanBig) / float64(spanSmall)
	if ratio < 9 || ratio > 11 {
		t.Errorf("10x packets should span ~10x cycles, got %.1fx", ratio)
	}
}

func TestBimodalSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	spec := Spec{Sizes: SizeBimodal}
	low, high := 0, 0
	for i := 0; i < 1000; i++ {
		s := drawSize(spec, rng)
		switch {
		case s >= 175 && s <= 225:
			low++
		case s >= 1375 && s <= 1425:
			high++
		default:
			t.Fatalf("size %d outside both modes", s)
		}
	}
	if low < 400 || high < 400 {
		t.Errorf("modes unbalanced: %d/%d", low, high)
	}
}

func TestStatelessFraction(t *testing.T) {
	prog := synthProg(t, 1, 16)
	arr := Synthetic(prog, Spec{Packets: 10000, Pipelines: 4, Seed: 3, StatelessFraction: 0.5}, 1, 16)
	sl := prog.FieldIndex("stateless")
	n := 0
	for _, a := range arr {
		if a.Fields[sl] != 0 {
			n++
		}
	}
	if n < 4500 || n > 5500 {
		t.Errorf("stateless packets = %d of 10000, want ~5000", n)
	}
}

func TestWebSearchFlowSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var small, large int
	var total float64
	for i := 0; i < 10000; i++ {
		s := sampleWebSearchFlowSize(rng)
		if s < 1000 || s > 30e6 {
			t.Fatalf("flow size %d outside distribution support", s)
		}
		if s <= 10e3 {
			small++
		}
		if s >= 1e6 {
			large++
		}
		total += float64(s)
	}
	// ~40% of flows are <=10KB; a heavy tail >=1MB carries most bytes.
	if small < 3000 || small > 5000 {
		t.Errorf("small flows = %d/10000, want ~4000", small)
	}
	if large < 1500 || large > 2800 {
		t.Errorf("large flows = %d/10000, want ~2200", large)
	}
	if mean := total / 10000; mean < 400e3 {
		t.Errorf("mean flow %f bytes suspiciously small for a heavy tail", mean)
	}
}

func TestFlowsTrace(t *testing.T) {
	prog := &ir.Program{Name: "flowlet", Fields: []string{"sport", "dport", "arrival"}}
	bind := func(f *Flow, p *PktCtx, fields []int64) {
		fields[0] = f.SrcPort
		fields[1] = f.DstPort
		fields[2] = p.Cycle
	}
	arr := Flows(prog, FlowSpec{Packets: 5000, Pipelines: 4, Seed: 7}, bind)
	if len(arr) != 5000 {
		t.Fatalf("length %d", len(arr))
	}
	sport := prog.FieldIndex("sport")
	arrival := prog.FieldIndex("arrival")
	flows := map[int64]bool{}
	for i := 1; i < len(arr); i++ {
		a, b := arr[i-1], arr[i]
		if b.Cycle < a.Cycle || (b.Cycle == a.Cycle && b.Port < a.Port) {
			t.Fatalf("unsorted at %d", i)
		}
	}
	for _, a := range arr {
		flows[a.Fields[sport]] = true
		if a.Fields[arrival] != a.Cycle {
			t.Fatalf("binder did not stamp arrival cycle")
		}
		if a.Size < MinPacketSize || a.Size > 1500 {
			t.Fatalf("packet size %d out of range", a.Size)
		}
	}
	if len(flows) < 65 {
		t.Errorf("only %d distinct flows; expected turnover beyond the initial 64", len(flows))
	}
}

// TestArrivalClockProperty: cumulative time advances proportionally to
// bytes at any load.
func TestArrivalClockProperty(t *testing.T) {
	prop := func(sizes []uint16, kRaw uint8) bool {
		k := int(kRaw%8) + 1
		c := newArrivalClock(k, 1.0)
		var bytes int64
		var last int64
		for _, s := range sizes {
			size := int(s%1500) + 64
			cy := c.next(size)
			if cy < last {
				return false
			}
			last = cy
			bytes += int64(size)
		}
		want := float64(bytes) / float64(64*k)
		return float64(last) <= want+1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomFields(t *testing.T) {
	prog := synthProg(t, 1, 16)
	arr := RandomFields(prog, Spec{Packets: 100, Pipelines: 2, Seed: 1})
	if len(arr) != 100 {
		t.Fatal("length")
	}
	for _, a := range arr {
		if len(a.Fields) != len(prog.Fields) {
			t.Fatal("field width mismatch")
		}
	}
}
