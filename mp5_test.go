package mp5_test

import (
	"testing"

	"mp5"
)

const facadeSrc = `
struct Packet { int srcip; int count; };
int counters [256] = {0};
void count (struct Packet p) {
    counters[p.srcip % 256] = counters[p.srcip % 256] + 1;
    p.count = counters[p.srcip % 256];
}
`

// TestPublicAPIEndToEnd walks the documented quickstart path: compile,
// trace, simulate, verify.
func TestPublicAPIEndToEnd(t *testing.T) {
	prog, err := mp5.Compile(facadeSrc, mp5.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.ResolutionStages == 0 {
		t.Error("MP5 target should add resolution stages")
	}
	single, err := mp5.Compile(facadeSrc, mp5.CompileOptions{SinglePipeline: true})
	if err != nil {
		t.Fatal(err)
	}
	if single.ResolutionStages != 0 || len(single.Accesses) != 0 {
		t.Error("single-pipeline target should not carry MP5 metadata")
	}

	trace := mp5.RandomFieldTrace(prog, mp5.TraceSpec{Packets: 5000, Pipelines: 4, Seed: 1})
	sim := mp5.NewSimulator(prog, mp5.Config{
		Arch: mp5.ArchMP5, Pipelines: 4, Seed: 1,
		RecordOutputs: true, RecordAccessOrder: true,
	})
	res := sim.Run(trace)
	if res.Completed != res.Injected {
		t.Fatalf("loss: %+v", res)
	}
	if res.C1Violating != 0 {
		t.Fatalf("violations on MP5: %d", res.C1Violating)
	}
	rep := mp5.Check(prog, sim, trace)
	if !rep.Equivalent {
		t.Fatalf("not equivalent: %v", rep.Mismatches)
	}
}

// TestPublicAPIApps exercises the application accessors and flow traces.
func TestPublicAPIApps(t *testing.T) {
	if got := len(mp5.Apps()); got != 4 {
		t.Fatalf("Apps() = %d, want 4", got)
	}
	app, err := mp5.AppByName("wfq")
	if err != nil {
		t.Fatal(err)
	}
	prog := app.MP5()
	trace := mp5.FlowTrace(prog, mp5.FlowTraceSpec{Packets: 3000, Pipelines: 2, Seed: 5}, app.Bind)
	sim := mp5.NewSimulator(prog, mp5.Config{Arch: mp5.ArchMP5, Pipelines: 2, RecordOutputs: true})
	res := sim.Run(trace)
	if res.Throughput < 0.95 {
		t.Errorf("wfq throughput %.3f", res.Throughput)
	}
	if rep := mp5.Check(prog, sim, trace); !rep.Equivalent {
		t.Fatalf("wfq not equivalent: %v", rep.Mismatches)
	}
}

// TestPublicAPIBaselines: the architecture constants select genuinely
// different behaviours.
func TestPublicAPIBaselines(t *testing.T) {
	prog, err := mp5.SyntheticProgram(2, 128)
	if err != nil {
		t.Fatal(err)
	}
	trace := mp5.SyntheticTrace(prog, mp5.TraceSpec{
		Packets: 8000, Pipelines: 4, Pattern: mp5.Skewed, Seed: 2,
	}, 2, 128)
	tput := map[mp5.Arch]float64{}
	for _, arch := range []mp5.Arch{mp5.ArchMP5, mp5.ArchNaive, mp5.ArchRecirc, mp5.ArchIdeal} {
		sim := mp5.NewSimulator(prog, mp5.Config{Arch: arch, Pipelines: 4, Seed: 2})
		tput[arch] = sim.Run(trace).Throughput
	}
	if tput[mp5.ArchNaive] > 0.3 {
		t.Errorf("naive throughput %.3f should be pinned near 1/k", tput[mp5.ArchNaive])
	}
	if tput[mp5.ArchMP5] <= tput[mp5.ArchRecirc] {
		t.Errorf("MP5 %.3f should beat recirculation %.3f", tput[mp5.ArchMP5], tput[mp5.ArchRecirc])
	}
	if tput[mp5.ArchIdeal] < tput[mp5.ArchMP5]*0.95 {
		t.Errorf("ideal %.3f far below MP5 %.3f", tput[mp5.ArchIdeal], tput[mp5.ArchMP5])
	}
}

// TestPublicAPIReference: the reference executor is exposed and serial.
func TestPublicAPIReference(t *testing.T) {
	prog, err := mp5.Compile(facadeSrc, mp5.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	trace := mp5.RandomFieldTrace(prog, mp5.TraceSpec{Packets: 100, Pipelines: 1, Seed: 9})
	regs, outs := mp5.Reference(prog, trace)
	var sum int64
	for _, v := range regs[0] {
		sum += v
	}
	if sum != 100 {
		t.Errorf("counter total = %d, want 100", sum)
	}
	if len(outs) != 100 {
		t.Errorf("outputs = %d", len(outs))
	}
}
