#!/bin/sh
# check.sh — the repository's local CI gate: build, vet, the race-enabled
# test suite, and the telemetry-overhead guard benchmark. Mirrors
# `make check` for environments without make.
set -eux

go build ./...
go vet ./...
go test -race ./...
# Guard: the simulator with tracing disabled (BenchmarkTraceDisabled) must
# stay within 2% of the seed's BenchmarkSimulatorPacketRate; compare the
# pkts/s metrics printed below. BenchmarkTraceTelemetry shows the cost of
# the full consumer stack (metrics + sampler + spans + JSONL).
go test -bench 'BenchmarkTrace|BenchmarkSimulatorPacketRate' -benchtime 2x -run '^$' .
