#!/bin/sh
# check.sh — the repository's local CI gate: build, gofmt, vet, the
# race-enabled test suite, the differential-fuzzing smoke, the network
# daemon soak, and the telemetry-overhead guard benchmark. Mirrors
# `make check` for environments without make.
set -eux

go build ./...
# Formatting gate: every tracked Go file must be gofmt-clean.
test -z "$(gofmt -l .)" || { gofmt -l .; exit 1; }
go vet ./...
go test -race ./...
# The simulator hot loop was rewritten event-driven; keep an explicit
# race-enabled pass over internal/core so narrowing the suite-wide -race run
# above can never silently drop it.
go test -race -count 1 ./internal/core
# The concurrent dataplane's correctness claims are about goroutine
# interleavings (ticket queues, parking, remap migration); its differential
# equivalence suite must always run under the race detector.
go test -race -count 1 ./internal/dataplane
# The state-compute-replication engine's coherence story is a lock-free
# stamp-chained replay ring shared by all replicas; its differential suite
# (including replica convergence) must always run under the race detector.
go test -race -count 1 ./internal/screp
# The network daemon's loopback soak (streaming ingestion, backpressure,
# egress acks, graceful drain, differential verification of the admitted
# order) must stay race-clean too.
go test -race -count 1 ./internal/server
# Allocs-per-op regression gate: steady-state Submit must stay at exactly
# zero heap allocations per packet and SubmitBatch at ~zero per chunk.
# Deliberately NOT under -race (the race runtime allocates, which would
# make AllocsPerRun meaningless — those tests self-skip under -race).
go test -count 1 -run 'TestSubmitSteadyStateAllocs|TestSubmitBatchSteadyStateAllocs' ./internal/dataplane
# Pooled-object lifecycle gate: the mp5debug build poisons every recycled
# packet, so a use-after-recycle shows up as an oracle mismatch or a race.
# Run the whole dataplane suite with poisoning AND the race detector on.
go test -tags mp5debug -race -count 1 ./internal/dataplane
# The multi-tenant registry's claims are about lock-free snapshots racing
# hot swaps and shared-quota accounting; its suite gets a pinned
# race-enabled pass.
go test -race -count 1 ./internal/tenant
# The bytecode compiler/VM is the shared per-stage executor under every
# engine; its differential suites (interpreter vs canonical stack loop vs
# quickened micro-ops, golden disassembly, exact MaxStack, corrupt-code
# errors) get a pinned race-enabled pass.
go test -race -count 1 ./internal/ir/bytecode
# Differential-fuzzing smoke: a deterministic, seeded, time-bounded slice of
# the harness — fixed random programs and workloads checked against the
# single-pipeline reference (state, outputs, C1 access order) on every
# order-preserving architecture, plus the committed seed corpus.
MP5_FUZZ_CASES=40 go test -run 'TestDifferentialSmoke|FuzzDifferential' ./internal/fuzz
# The same smoke with the compiled bytecode executor forced on every
# engine: all three oracles (state, outputs, C1 access order) must hold on
# the quickened VM exactly as they do on the tree-walking interpreter.
MP5_FUZZ_CASES=40 MP5_FUZZ_EXECUTOR=bytecode go test -count 1 -run TestDifferentialSmoke ./internal/fuzz
# The same smoke restricted to the state-compute-replication engine: the
# fourth engine leg alone, so a replication regression is attributed
# directly instead of surfacing as noise in the full sweep.
MP5_FUZZ_CASES=40 MP5_FUZZ_ENGINE=screp go test -count 1 -run TestDifferentialSmoke ./internal/fuzz
# End-to-end daemon soak: mp5load drives mp5d over loopback TCP with a
# fixed seed; zero loss, a live admin plane, and a clean SIGTERM drain with
# reference equivalence are all required.
sh scripts/serve_smoke.sh
# End-to-end multi-tenant soak: two tenants with different programs and
# quotas share one daemon under concurrent load; one is hot-swapped via the
# admin plane mid-run, and the drain must report per-tenant/per-version
# equivalence with zero loss.
sh scripts/tenant_smoke.sh
# End-to-end tracing soak: the daemon with 1/16 wire-span sampling and a
# JSONL span stream; the live trace surface (/stats, /metrics, mp5top)
# must serve, and mp5trace must reconcile every exported span's stage sums
# against its total.
sh scripts/trace_smoke.sh
# Guard: the simulator with tracing disabled (BenchmarkTraceDisabled) must
# stay within 2% of the seed's BenchmarkSimulatorPacketRate; compare the
# pkts/s metrics printed below. BenchmarkTraceTelemetry shows the cost of
# the full consumer stack (metrics + sampler + spans + JSONL).
go test -bench 'BenchmarkTrace|BenchmarkSimulatorPacketRate' -benchtime 2x -run '^$' .
