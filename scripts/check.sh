#!/bin/sh
# check.sh — the repository's local CI gate: build, vet, the race-enabled
# test suite, the differential-fuzzing smoke, and the telemetry-overhead
# guard benchmark. Mirrors `make check` for environments without make.
set -eux

go build ./...
go vet ./...
go test -race ./...
# The simulator hot loop was rewritten event-driven; keep an explicit
# race-enabled pass over internal/core so narrowing the suite-wide -race run
# above can never silently drop it.
go test -race -count 1 ./internal/core
# The concurrent dataplane's correctness claims are about goroutine
# interleavings (ticket queues, parking, remap migration); its differential
# equivalence suite must always run under the race detector.
go test -race -count 1 ./internal/dataplane
# Differential-fuzzing smoke: a deterministic, seeded, time-bounded slice of
# the harness — fixed random programs and workloads checked against the
# single-pipeline reference (state, outputs, C1 access order) on every
# order-preserving architecture, plus the committed seed corpus.
MP5_FUZZ_CASES=40 go test -run 'TestDifferentialSmoke|FuzzDifferential' ./internal/fuzz
# Guard: the simulator with tracing disabled (BenchmarkTraceDisabled) must
# stay within 2% of the seed's BenchmarkSimulatorPacketRate; compare the
# pkts/s metrics printed below. BenchmarkTraceTelemetry shows the cost of
# the full consumer stack (metrics + sampler + spans + JSONL).
go test -bench 'BenchmarkTrace|BenchmarkSimulatorPacketRate' -benchtime 2x -run '^$' .
