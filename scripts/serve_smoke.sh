#!/bin/sh
# serve_smoke.sh — end-to-end loopback soak of the network daemon: build
# mp5d and mp5load, start the daemon on ephemeral ports in -verify mode,
# push a fixed-seed closed-loop TCP workload through it (lossless: every
# packet must be acked), probe the admin plane, then SIGTERM and require a
# clean drain with differential equivalence (state, outputs, C1 order)
# against the single-pipeline reference.
set -eu

cd "$(dirname "$0")/.."
DIR=.smoke
mkdir -p "$DIR"
trap 'test -n "${DPID:-}" && kill -9 "$DPID" 2>/dev/null; rm -f "$DIR"/mp5d "$DIR"/mp5load "$DIR"/mp5d.out' EXIT

go build -o "$DIR/mp5d" ./cmd/mp5d
go build -o "$DIR/mp5load" ./cmd/mp5load

"$DIR/mp5d" -synthetic 4 -regsize 256 -workers 4 \
    -listen-tcp 127.0.0.1:0 -listen-udp "" -admin 127.0.0.1:0 \
    -verify >"$DIR/mp5d.out" 2>&1 &
DPID=$!

# Wait for the parseable listening line and extract the bound addresses.
i=0
while ! grep -q '^mp5d: listening' "$DIR/mp5d.out" 2>/dev/null; do
    i=$((i + 1))
    test "$i" -le 50 || { echo "serve_smoke: daemon never came up"; cat "$DIR/mp5d.out"; exit 1; }
    sleep 0.1
done
TCP=$(sed -n 's/^mp5d: listening tcp=\([^ ]*\).*/\1/p' "$DIR/mp5d.out")
ADMIN=$(sed -n 's/^mp5d: listening.*admin=\([^ ]*\).*/\1/p' "$DIR/mp5d.out")

# Closed-loop soak: mp5load exits nonzero unless every packet is acked.
"$DIR/mp5load" -tcp "$TCP" -synthetic 4 -regsize 256 -packets 5000 \
    -seed 7 -pattern skewed -window 128

# The admin plane must be serving while the daemon runs — including the
# live-introspection endpoints (curl -fsS fails the smoke on any non-200).
if command -v curl >/dev/null 2>&1; then
    curl -fsS "http://$ADMIN/healthz" | grep -q '"status":"ok"'
    curl -fsS "http://$ADMIN/metrics" | grep -q '^server_acks_total 5000$'
    curl -fsS "http://$ADMIN/metrics" | grep -q '^server_uptime_seconds'
    curl -fsS "http://$ADMIN/shardmap" | grep -q '"owners"'
    curl -fsS "http://$ADMIN/stats" | grep -q '"uptime_sec"'
    curl -fsS "http://$ADMIN/debug/pprof/goroutine?debug=1" | grep -q 'goroutine profile'
fi

# Graceful drain: SIGTERM, clean exit, equivalence verified at the daemon.
kill -TERM "$DPID"
wait "$DPID"
DPID=
grep -q '^equivalence        OK' "$DIR/mp5d.out" || {
    echo "serve_smoke: daemon did not report equivalence OK"
    cat "$DIR/mp5d.out"
    exit 1
}
echo "serve_smoke: OK (5000 packets, zero loss, equivalence verified)"
