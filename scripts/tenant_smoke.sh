#!/bin/sh
# tenant_smoke.sh — end-to-end multi-tenant soak of the network daemon: two
# tenants with different Domino programs and admission quotas share one
# mp5d, mp5load drives both concurrently over loopback TCP (lossless), the
# alpha program is hot-swapped via POST /programs/alpha while its load is
# in flight, a second phase lands on the new version, and SIGTERM must
# drain cleanly with per-tenant/per-version differential equivalence.
set -eu

cd "$(dirname "$0")/.."
DIR=.smoke
mkdir -p "$DIR"
trap 'test -n "${DPID:-}" && kill -9 "$DPID" 2>/dev/null; rm -f "$DIR"/mp5d "$DIR"/mp5load "$DIR"/mp5d.out "$DIR"/alpha1.out "$DIR"/beta.out "$DIR"/*.dm' EXIT

if ! command -v curl >/dev/null 2>&1; then
    echo "tenant_smoke: SKIP (curl not found; the hot-swap leg needs it)"
    exit 0
fi

go build -o "$DIR/mp5d" ./cmd/mp5d
go build -o "$DIR/mp5load" ./cmd/mp5load

# Two tenant programs with different shapes (3 fields/2 registers vs
# 2 fields/1 register), plus a hot-swap candidate for alpha that keeps the
# wire field count (the swap contract) but changes the table geometry.
cat >"$DIR/alpha.dm" <<'EOF'
#define SLOTS 256

struct Packet {
    int dst;
    int util;
    int path_id;
};

int best_util [SLOTS] = {100};
int best_path [SLOTS] = {0};

void alpha (struct Packet p) {
    if (p.util < best_util[p.dst % SLOTS]) {
        best_util[p.dst % SLOTS] = p.util;
        best_path[p.dst % SLOTS] = p.path_id;
    }
}
EOF
cat >"$DIR/beta.dm" <<'EOF'
#define NFLOWS 128

struct Packet {
    int flow;
    int val;
};

int acc [NFLOWS] = {0};

void beta (struct Packet p) {
    acc[p.flow % NFLOWS] = acc[p.flow % NFLOWS] + p.val;
}
EOF
cat >"$DIR/alpha_v2.dm" <<'EOF'
#define SLOTS 128

struct Packet {
    int dst;
    int util;
    int path_id;
};

int best_util [SLOTS] = {50};
int best_path [SLOTS] = {0};

void alpha_v2 (struct Packet p) {
    if (p.util < best_util[p.dst % SLOTS]) {
        best_util[p.dst % SLOTS] = p.util;
        best_path[p.dst % SLOTS] = p.path_id;
    } else if (p.path_id == best_path[p.dst % SLOTS]) {
        best_util[p.dst % SLOTS] = p.util;
    }
}
EOF

"$DIR/mp5d" -tenant "alpha=$DIR/alpha.dm@192" -tenant "beta=$DIR/beta.dm@64" \
    -workers 4 -window 256 \
    -listen-tcp 127.0.0.1:0 -listen-udp "" -admin 127.0.0.1:0 \
    -verify >"$DIR/mp5d.out" 2>&1 &
DPID=$!

i=0
while ! grep -q '^mp5d: listening' "$DIR/mp5d.out" 2>/dev/null; do
    i=$((i + 1))
    test "$i" -le 50 || { echo "tenant_smoke: daemon never came up"; cat "$DIR/mp5d.out"; exit 1; }
    sleep 0.1
done
TCP=$(sed -n 's/^mp5d: listening tcp=\([^ ]*\).*/\1/p' "$DIR/mp5d.out")
ADMIN=$(sed -n 's/^mp5d: listening.*admin=\([^ ]*\).*/\1/p' "$DIR/mp5d.out")
grep -q '^mp5d: tenant alpha id=0' "$DIR/mp5d.out"
grep -q '^mp5d: tenant beta id=1' "$DIR/mp5d.out"

# Both tenants under load at once: alpha's phase-1 trace is long enough to
# still be in flight when the swap lands; beta runs against its quota the
# whole time. mp5load exits nonzero on any unacked packet.
"$DIR/mp5load" -tcp "$TCP" -program "$DIR/alpha.dm" -packets 20000 \
    -seed 7 -tenant 0 -window 128 >"$DIR/alpha1.out" 2>&1 &
LPID_A=$!
"$DIR/mp5load" -tcp "$TCP" -program "$DIR/beta.dm" -packets 8000 \
    -seed 11 -tenant 1 -window 64 >"$DIR/beta.out" 2>&1 &
LPID_B=$!

# Wait until alpha has actually admitted traffic (live /programs counters,
# not the sampled gauges), then hot-swap it mid-run.
i=0
while :; do
    SUB=$(curl -fsS "http://$ADMIN/programs" | sed -n 's/.*"name":"alpha"[^[]*"submitted":\([0-9]*\).*/\1/p')
    test -n "$SUB" && test "$SUB" -gt 0 && break
    i=$((i + 1))
    test "$i" -le 200 || { echo "tenant_smoke: alpha never admitted traffic"; exit 1; }
    sleep 0.02
done
curl -fsS -X POST --data-binary "@$DIR/alpha_v2.dm" \
    "http://$ADMIN/programs/alpha" | grep -q '"version":2' || {
    echo "tenant_smoke: hot swap did not report version 2"
    exit 1
}

wait "$LPID_A" || { echo "tenant_smoke: alpha load lost packets"; cat "$DIR/alpha1.out"; exit 1; }
wait "$LPID_B" || { echo "tenant_smoke: beta load lost packets"; cat "$DIR/beta.out"; exit 1; }

# Phase 2 lands entirely on alpha v2: the swapped program must carry live
# traffic, not just sit registered.
"$DIR/mp5load" -tcp "$TCP" -program "$DIR/alpha_v2.dm" -packets 6000 \
    -seed 13 -tenant 0 -window 128

# Per-tenant admin plane while the daemon runs.
curl -fsS "http://$ADMIN/stats" | grep -q '"tenants":\[{"name":"alpha"'
curl -fsS "http://$ADMIN/shardmap?tenant=beta" | grep -q '"owners"'
curl -fsS "http://$ADMIN/programs" | grep -q '"active_version":2'
curl -fsS "http://$ADMIN/metrics" | grep -q '^tenant_submitted_packets{tenant="alpha"}'
curl -fsS "http://$ADMIN/metrics" | grep -q '^tenant_quota_inuse{tenant="beta"} 0$'

# Graceful drain: per-version equivalence detail plus the aggregate bar.
kill -TERM "$DPID"
wait "$DPID"
DPID=
for want in 'tenant alpha +v1 +[0-9]+ packets +OK' \
            'tenant alpha +v2 +[0-9]+ packets +OK' \
            'tenant beta +v1 +[0-9]+ packets +OK'; do
    grep -Eq "$want" "$DIR/mp5d.out" || {
        echo "tenant_smoke: missing per-tenant verify line: $want"
        cat "$DIR/mp5d.out"
        exit 1
    }
done
grep -q '^equivalence        OK' "$DIR/mp5d.out" || {
    echo "tenant_smoke: daemon did not report equivalence OK"
    cat "$DIR/mp5d.out"
    exit 1
}
echo "tenant_smoke: OK (two tenants, hot swap mid-run, zero loss, per-version equivalence verified)"
