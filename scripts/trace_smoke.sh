#!/bin/sh
# trace_smoke.sh — end-to-end smoke of the wire-to-wire tracing path: run
# the daemon with aggressive span sampling (1/16) and a JSONL span stream,
# push a fixed-seed closed-loop TCP workload through it, watch the live
# trace surface on /stats and mp5top, then drain and validate the span
# stream with mp5trace (per-stage sums must reconcile with every span's
# total; the expected span count must be present).
set -eu

cd "$(dirname "$0")/.."
DIR=.smoke
mkdir -p "$DIR"
trap 'test -n "${DPID:-}" && kill -9 "$DPID" 2>/dev/null; rm -f "$DIR"/mp5d "$DIR"/mp5load "$DIR"/mp5top "$DIR"/mp5trace "$DIR"/mp5d.out "$DIR"/spans.jsonl' EXIT

go build -o "$DIR/mp5d" ./cmd/mp5d
go build -o "$DIR/mp5load" ./cmd/mp5load
go build -o "$DIR/mp5top" ./cmd/mp5top
go build -o "$DIR/mp5trace" ./cmd/mp5trace

"$DIR/mp5d" -synthetic 4 -regsize 256 -workers 4 \
    -listen-tcp 127.0.0.1:0 -listen-udp "" -admin 127.0.0.1:0 \
    -trace-sample 16 -trace-jsonl "$DIR/spans.jsonl" >"$DIR/mp5d.out" 2>&1 &
DPID=$!

i=0
while ! grep -q '^mp5d: listening' "$DIR/mp5d.out" 2>/dev/null; do
    i=$((i + 1))
    test "$i" -le 50 || { echo "trace_smoke: daemon never came up"; cat "$DIR/mp5d.out"; exit 1; }
    sleep 0.1
done
TCP=$(sed -n 's/^mp5d: listening tcp=\([^ ]*\).*/\1/p' "$DIR/mp5d.out")
ADMIN=$(sed -n 's/^mp5d: listening.*admin=\([^ ]*\).*/\1/p' "$DIR/mp5d.out")

"$DIR/mp5load" -tcp "$TCP" -synthetic 4 -regsize 256 -packets 8000 \
    -seed 9 -pattern skewed -window 128

# The live trace surface: /stats carries stage quantiles and the sampling
# accounting; mp5top renders one frame off the same snapshot.
if command -v curl >/dev/null 2>&1; then
    curl -fsS "http://$ADMIN/stats" | grep -q '"trace_sampled":500'
    curl -fsS "http://$ADMIN/stats" | grep -q '"stage":"total"'
    curl -fsS "http://$ADMIN/metrics" | grep -q '^trace_spans_sampled_total 500$'
fi
"$DIR/mp5top" -admin "$ADMIN" -once | grep -q 'wire spans'

kill -TERM "$DPID"
wait "$DPID"
DPID=

grep -q '^trace              500 spans sampled' "$DIR/mp5d.out" || {
    echo "trace_smoke: daemon did not report the expected span count"
    cat "$DIR/mp5d.out"
    exit 1
}
# 8000 packets at 1/16 = 500 spans; every span's stage durations must sum
# to its total within 1ms, and all 500 must have reached the stream.
"$DIR/mp5trace" -min-spans 500 "$DIR/spans.jsonl"
echo "trace_smoke: OK (500 spans, stage sums reconcile)"
